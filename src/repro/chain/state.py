"""World state: account balances, nonces, and contract storage.

The state is a snapshot-able mapping from address to :class:`AccountState`.
Contract storage is a per-account key/value dict whose values must be
canonically serializable so state roots are deterministic across nodes.
Snapshots power transaction-level rollback (revert/out-of-gas) and block-level
rollback (reorgs re-execute from the fork point).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.chain.crypto import Address
from repro.errors import InsufficientFundsError
from repro.utils.hashing import hash_object


@dataclass
class AccountState:
    """State of one account (externally owned or contract)."""

    balance: int = 0
    nonce: int = 0
    contract_name: Optional[str] = None
    storage: dict[str, Any] = field(default_factory=dict)

    @property
    def is_contract(self) -> bool:
        """True for accounts hosting deployed contract code."""
        return self.contract_name is not None

    def to_dict(self) -> dict:
        return {
            "balance": self.balance,
            "nonce": self.nonce,
            "contract_name": self.contract_name,
            "storage": self.storage,
        }


class WorldState:
    """Mutable world state with snapshot/restore support."""

    def __init__(self) -> None:
        self._accounts: dict[Address, AccountState] = {}

    # ------------------------------------------------------------------
    # Account access
    # ------------------------------------------------------------------

    def account(self, address: Address) -> AccountState:
        """Return (creating lazily) the account at ``address``."""
        if address not in self._accounts:
            self._accounts[address] = AccountState()
        return self._accounts[address]

    def has_account(self, address: Address) -> bool:
        """True if the account exists without creating it."""
        return address in self._accounts

    def addresses(self) -> list[Address]:
        """Sorted list of known addresses."""
        return sorted(self._accounts)

    def balance_of(self, address: Address) -> int:
        """Balance, zero for unknown accounts (no account creation)."""
        account = self._accounts.get(address)
        return account.balance if account else 0

    def nonce_of(self, address: Address) -> int:
        """Nonce, zero for unknown accounts."""
        account = self._accounts.get(address)
        return account.nonce if account else 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def credit(self, address: Address, amount: int) -> None:
        """Add ``amount`` to the account balance."""
        if amount < 0:
            raise ValueError("credit amount must be non-negative")
        self.account(address).balance += amount

    def debit(self, address: Address, amount: int) -> None:
        """Subtract ``amount``; raises :class:`InsufficientFundsError`."""
        if amount < 0:
            raise ValueError("debit amount must be non-negative")
        account = self.account(address)
        if account.balance < amount:
            raise InsufficientFundsError(
                f"{address} balance {account.balance} < debit {amount}"
            )
        account.balance -= amount

    def transfer(self, src: Address, dst: Address, amount: int) -> None:
        """Atomic balance move from ``src`` to ``dst``."""
        self.debit(src, amount)
        self.credit(dst, amount)

    def bump_nonce(self, address: Address) -> int:
        """Increment and return the account nonce."""
        account = self.account(address)
        account.nonce += 1
        return account.nonce

    def deploy(self, address: Address, contract_name: str, initial_storage: Optional[dict] = None) -> None:
        """Mark an address as hosting a contract with optional seed storage."""
        account = self.account(address)
        account.contract_name = contract_name
        if initial_storage:
            account.storage.update(initial_storage)

    # ------------------------------------------------------------------
    # Snapshot / root
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Deep-copy snapshot for rollback."""
        return {address: copy.deepcopy(account) for address, account in self._accounts.items()}

    def restore(self, snap: dict) -> None:
        """Restore a snapshot taken by :meth:`snapshot`."""
        self._accounts = {address: copy.deepcopy(account) for address, account in snap.items()}

    def state_root(self) -> str:
        """Deterministic hash over the full state (storage included)."""
        return hash_object(
            {address: account.to_dict() for address, account in self._accounts.items()}
        )

    def copy(self) -> "WorldState":
        """Independent deep copy of the whole state."""
        clone = WorldState()
        clone.restore(self.snapshot())
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorldState(accounts={len(self._accounts)})"
