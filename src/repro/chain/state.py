"""World state: account balances, nonces, and contract storage.

The state is a mapping from address to :class:`AccountState` with three
rollback mechanisms, cheapest first:

* **Journal checkpoints** — every mutation made through the ``WorldState``
  API appends one undo record to an in-order journal.  ``checkpoint()``
  returns a mark, ``rollback(mark)`` undoes everything after it in
  O(touched entries), and ``commit(mark)`` keeps the changes while leaving
  the undo records in place for any *enclosing* checkpoint (checkpoints
  nest arbitrarily).  Transaction-level revert/out-of-gas and block-level
  reorg rollback both ride this journal instead of deep-copying the state.
* **Copy-on-write overlays** — ``overlay()`` returns a child state that
  reads through to its (frozen) base and copies an account locally only
  on first write.  Block-candidate execution and read-only ``eth_call``
  run on overlays, so speculative work never clones untouched accounts.
* **Deep snapshots** — ``snapshot()``/``restore()``/``copy()`` keep the
  original O(state) semantics for callers that need a fully detached
  replica (tests, tooling, replay bootstrap).

State roots are incremental: each account's canonical hash is cached and
invalidated when the account is touched, so ``state_root()`` after a block
re-hashes only the accounts that block touched.  The root is a hash over
the sorted ``{address: account_hash}`` map; every node computes it with the
same formula, which is all determinism requires.

Two caveats, enforced by convention exactly as the contract runtime
documents: values reached through ``storage_get``/``sload`` must be treated
as immutable (write a new object through ``storage_set`` instead of
mutating in place), and an overlay's base must not be mutated while the
overlay is alive.  Mutating an :class:`AccountState` obtained from
``account()`` directly is supported for tooling/tests but bypasses the
journal — such edits are invisible to ``rollback`` (the hash cache *is*
invalidated, so roots stay correct).

Module-level :data:`STATE_STATS` counts journal entries written, rollback
work, and account re-hashes so benchmarks can assert rollback cost is
proportional to touched entries and re-rooting is proportional to dirty
accounts.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.chain.crypto import Address
from repro.errors import ChainError, InsufficientFundsError
from repro.utils.hashing import hash_object


class StateError(ChainError):
    """Invalid journal operation (bad mark, pruned history)."""


@dataclass
class StateStats:
    """Counters of journal and root-cache work (benchmark contract)."""

    journal_entries: int = 0     # undo records written
    rollbacks: int = 0           # rollback() calls
    entries_reverted: int = 0    # undo records replayed by rollbacks
    accounts_hashed: int = 0     # per-account hashes actually computed
    roots_computed: int = 0      # state_root() calls

    def reset(self) -> None:
        """Zero the counters (tests/benchmarks call this between phases)."""
        self.journal_entries = 0
        self.rollbacks = 0
        self.entries_reverted = 0
        self.accounts_hashed = 0
        self.roots_computed = 0

    def as_dict(self) -> dict:
        return {
            "journal_entries": self.journal_entries,
            "rollbacks": self.rollbacks,
            "entries_reverted": self.entries_reverted,
            "accounts_hashed": self.accounts_hashed,
            "roots_computed": self.roots_computed,
        }


#: Process-wide state-machinery counters.
STATE_STATS = StateStats()

#: Sentinel for "storage slot did not exist" in sstore undo records.
_MISSING = object()


@dataclass
class AccountState:
    """State of one account (externally owned or contract)."""

    balance: int = 0
    nonce: int = 0
    contract_name: Optional[str] = None
    storage: dict[str, Any] = field(default_factory=dict)

    @property
    def is_contract(self) -> bool:
        """True for accounts hosting deployed contract code."""
        return self.contract_name is not None

    def to_dict(self) -> dict:
        return {
            "balance": self.balance,
            "nonce": self.nonce,
            "contract_name": self.contract_name,
            "storage": self.storage,
        }


class WorldState:
    """Mutable world state with journaled checkpoints and CoW overlays."""

    def __init__(self, base: Optional["WorldState"] = None) -> None:
        self._accounts: dict[Address, AccountState] = {}
        self._base = base
        # Undo log.  Marks handed out by checkpoint() are absolute positions
        # (journal_base + local length) so pruning old history does not
        # invalidate the marks that survive it.
        self._journal: list[tuple] = []
        self._journal_base = 0
        # address -> cached hash of the account's canonical form; an absent
        # entry means the account is dirty and will be re-hashed on demand.
        self._hash_cache: dict[Address, str] = {}

    # ------------------------------------------------------------------
    # Account access
    # ------------------------------------------------------------------

    def _lookup(self, address: Address) -> Optional[AccountState]:
        """Resolve an account for reading (no creation, no copy)."""
        account = self._accounts.get(address)
        if account is None and self._base is not None:
            return self._base._lookup(address)
        return account

    def _write_account(self, address: Address) -> AccountState:
        """Resolve an account for writing.

        Creates it (journaled) if unknown; for overlays, copies the base
        account into the local map first — balance/nonce/code by value and
        storage as a fresh dict sharing the (immutable-by-convention)
        stored values.
        """
        account = self._accounts.get(address)
        if account is None:
            shadow = self._base._lookup(address) if self._base is not None else None
            if shadow is None:
                account = AccountState()
            else:
                account = AccountState(
                    balance=shadow.balance,
                    nonce=shadow.nonce,
                    contract_name=shadow.contract_name,
                    storage=dict(shadow.storage),
                )
            self._accounts[address] = account
            self._log(("added", address), address)
        return account

    def _log(self, record: tuple, address: Address) -> None:
        """Append one undo record and mark the account dirty."""
        self._journal.append(record)
        STATE_STATS.journal_entries += 1
        self._hash_cache.pop(address, None)

    def account(self, address: Address) -> AccountState:
        """Return (creating lazily) the account at ``address``.

        The caller may mutate the returned object directly; the account is
        marked dirty for root purposes, but direct edits bypass the journal
        (use the typed mutators for anything that must be rollback-able).
        """
        account = self._write_account(address)
        self._hash_cache.pop(address, None)
        return account

    def has_account(self, address: Address) -> bool:
        """True if the account exists without creating it."""
        return self._lookup(address) is not None

    def _iter_addresses(self) -> Iterable[Address]:
        if self._base is None:
            return self._accounts.keys()
        merged = set(self._base._iter_addresses())
        merged.update(self._accounts)
        return merged

    def addresses(self) -> list[Address]:
        """Sorted list of known addresses."""
        return sorted(self._iter_addresses())

    def balance_of(self, address: Address) -> int:
        """Balance, zero for unknown accounts (no account creation)."""
        account = self._lookup(address)
        return account.balance if account else 0

    def nonce_of(self, address: Address) -> int:
        """Nonce, zero for unknown accounts."""
        account = self._lookup(address)
        return account.nonce if account else 0

    def is_contract(self, address: Address) -> bool:
        """True iff a contract is deployed at ``address`` (no creation)."""
        account = self._lookup(address)
        return account is not None and account.is_contract

    def contract_name_of(self, address: Address) -> Optional[str]:
        """Deployed contract class name, or ``None`` (no creation)."""
        account = self._lookup(address)
        return account.contract_name if account else None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def credit(self, address: Address, amount: int) -> None:
        """Add ``amount`` to the account balance."""
        if amount < 0:
            raise ValueError("credit amount must be non-negative")
        account = self._write_account(address)
        self._log(("balance", address, account.balance), address)
        account.balance += amount

    def debit(self, address: Address, amount: int) -> None:
        """Subtract ``amount``; raises :class:`InsufficientFundsError`."""
        if amount < 0:
            raise ValueError("debit amount must be non-negative")
        account = self._write_account(address)
        if account.balance < amount:
            raise InsufficientFundsError(
                f"{address} balance {account.balance} < debit {amount}"
            )
        self._log(("balance", address, account.balance), address)
        account.balance -= amount

    def transfer(self, src: Address, dst: Address, amount: int) -> None:
        """Atomic balance move from ``src`` to ``dst``."""
        self.debit(src, amount)
        self.credit(dst, amount)

    def bump_nonce(self, address: Address) -> int:
        """Increment and return the account nonce."""
        account = self._write_account(address)
        self._log(("nonce", address, account.nonce), address)
        account.nonce += 1
        return account.nonce

    def set_balance(self, address: Address, balance: int) -> None:
        """Set the balance outright (journaled).

        Used by the parallel executor to apply a speculated transaction's
        final balances; rollback restores the previous value exactly like
        a credit/debit would.
        """
        if balance < 0:
            raise ValueError("balance must be non-negative")
        account = self._write_account(address)
        self._log(("balance", address, account.balance), address)
        account.balance = balance

    def set_nonce(self, address: Address, nonce: int) -> None:
        """Set the nonce outright (journaled)."""
        if nonce < 0:
            raise ValueError("nonce must be non-negative")
        account = self._write_account(address)
        self._log(("nonce", address, account.nonce), address)
        account.nonce = nonce

    def deploy(self, address: Address, contract_name: str, initial_storage: Optional[dict] = None) -> None:
        """Mark an address as hosting a contract with optional seed storage."""
        account = self._write_account(address)
        self._log(("code", address, account.contract_name), address)
        account.contract_name = contract_name
        if initial_storage:
            for key, value in initial_storage.items():
                self.storage_set(address, key, value)

    # ------------------------------------------------------------------
    # Contract storage (journaled; the runtime's only mutation path)
    # ------------------------------------------------------------------

    def storage_get(self, address: Address, key: str, default: Any = None) -> Any:
        """Read a storage slot (no account creation); treat the value as
        immutable — write replacements through :meth:`storage_set`."""
        account = self._lookup(address)
        if account is None:
            return default
        return account.storage.get(key, default)

    def storage_has(self, address: Address, key: str) -> bool:
        """True iff the slot exists (no account creation)."""
        account = self._lookup(address)
        return account is not None and key in account.storage

    def storage_keys(self, address: Address, prefix: str = "") -> list[str]:
        """Sorted storage keys with ``prefix`` (no account creation)."""
        account = self._lookup(address)
        if account is None:
            return []
        return sorted(key for key in account.storage if key.startswith(prefix))

    def storage_set(self, address: Address, key: str, value: Any) -> None:
        """Write a storage slot (journaled)."""
        account = self._write_account(address)
        old = account.storage.get(key, _MISSING)
        self._log(("sstore", address, key, old), address)
        account.storage[key] = value

    def storage_delete(self, address: Address, key: str) -> None:
        """Remove a storage slot if present (journaled)."""
        account = self._write_account(address)
        if key in account.storage:
            self._log(("sstore", address, key, account.storage[key]), address)
            del account.storage[key]

    # ------------------------------------------------------------------
    # Journal checkpoints
    # ------------------------------------------------------------------

    def checkpoint(self) -> int:
        """Open a (nested) checkpoint; returns the mark to commit/rollback."""
        return self._journal_base + len(self._journal)

    def commit(self, mark: int) -> None:
        """Accept everything since ``mark``.

        Undo records stay in the journal so enclosing checkpoints (and the
        node's per-block marks) can still roll past this point; use
        :meth:`flatten_journal` to discard history outright.
        """
        self._check_mark(mark)

    def rollback(self, mark: int) -> None:
        """Undo every change made since ``mark`` in O(touched entries)."""
        self._check_mark(mark)
        STATE_STATS.rollbacks += 1
        keep = mark - self._journal_base
        for record in reversed(self._journal[keep:]):
            self._undo(record)
            STATE_STATS.entries_reverted += 1
        del self._journal[keep:]

    def _check_mark(self, mark: int) -> None:
        if not self._journal_base <= mark <= self.checkpoint():
            raise StateError(
                f"mark {mark} outside live journal "
                f"[{self._journal_base}, {self.checkpoint()}]"
            )

    def can_rollback_to(self, mark: int) -> bool:
        """True iff ``mark`` is still inside the (unpruned) journal."""
        return self._journal_base <= mark <= self.checkpoint()

    def prune_journal(self, mark: int) -> None:
        """Discard undo history below ``mark`` (marks below it die)."""
        self._check_mark(mark)
        del self._journal[: mark - self._journal_base]
        self._journal_base = mark

    def flatten_journal(self) -> None:
        """Discard all undo history; open marks become unreachable."""
        self.prune_journal(self.checkpoint())

    def journal_size(self) -> int:
        """Number of live undo records (diagnostics/benchmarks)."""
        return len(self._journal)

    def journal_records_since(self, mark: int) -> tuple[tuple, ...]:
        """Undo records appended since ``mark`` (read-only view).

        The parallel executor derives write sets from these records; a
        rolled-back span leaves no records, so the slice is always the
        *net* mutation list.
        """
        self._check_mark(mark)
        return tuple(self._journal[mark - self._journal_base :])

    def _undo(self, record: tuple) -> None:
        kind = record[0]
        address = record[1]
        if kind == "added":
            self._accounts.pop(address, None)
        elif kind == "balance":
            self._accounts[address].balance = record[2]
        elif kind == "nonce":
            self._accounts[address].nonce = record[2]
        elif kind == "code":
            self._accounts[address].contract_name = record[2]
        elif kind == "sstore":
            storage = self._accounts[address].storage
            if record[3] is _MISSING:
                storage.pop(record[2], None)
            else:
                storage[record[2]] = record[3]
        self._hash_cache.pop(address, None)

    # ------------------------------------------------------------------
    # Overlays / snapshots / roots
    # ------------------------------------------------------------------

    def overlay(self) -> "WorldState":
        """Copy-on-write child reading through to this (now frozen) state.

        Do not mutate the base while the overlay is alive; discard the
        overlay to discard its writes.
        """
        return WorldState(base=self)

    def snapshot(self) -> dict:
        """Deep-copy snapshot for rollback (overlays are materialized)."""
        snap = self._base.snapshot() if self._base is not None else {}
        snap.update(
            {address: copy.deepcopy(account) for address, account in self._accounts.items()}
        )
        return snap

    def export_account_dicts(self) -> dict[Address, dict]:
        """Canonical-serializable form of every account (overlays flattened).

        This is the world-state payload a snapshot checkpoint persists;
        :meth:`from_account_dicts` is the inverse.  Storage values are
        shared, not copied — encode or discard the result before mutating
        the state.
        """
        merged: dict[Address, AccountState] = {}
        for address in self._iter_addresses():
            account = self._lookup(address)
            if account is not None:
                merged[address] = account
        return {address: merged[address].to_dict() for address in sorted(merged)}

    @classmethod
    def from_account_dicts(cls, accounts: dict[Address, dict]) -> "WorldState":
        """Rebuild a detached state from :meth:`export_account_dicts` output.

        The journal starts empty (snapshot contents never roll back),
        matching how a replayed-from-genesis state begins life.
        """
        state = cls()
        for address in sorted(accounts):
            payload = accounts[address]
            state._accounts[address] = AccountState(
                balance=int(payload["balance"]),
                nonce=int(payload["nonce"]),
                contract_name=payload.get("contract_name"),
                storage=dict(payload.get("storage", {})),
            )
        return state

    def restore(self, snap: dict) -> None:
        """Restore a snapshot taken by :meth:`snapshot`.

        The state becomes a detached full replica: any overlay base is
        dropped and the journal (with every open mark) is reset.
        """
        self._accounts = {address: copy.deepcopy(account) for address, account in snap.items()}
        self._base = None
        self._journal = []
        self._journal_base = 0
        self._hash_cache = {}

    def account_hash(self, address: Address) -> str:
        """Cached canonical hash of one account (must exist)."""
        account = self._accounts.get(address)
        if account is None:
            if self._base is not None:
                return self._base.account_hash(address)
            raise StateError(f"no account {address}")
        cached = self._hash_cache.get(address)
        if cached is None:
            cached = hash_object(account.to_dict())
            STATE_STATS.accounts_hashed += 1
            self._hash_cache[address] = cached
        return cached

    def state_root(self) -> str:
        """Deterministic hash over the full state (storage included).

        Combines cached per-account hashes, so only accounts touched since
        the last call are re-hashed.
        """
        STATE_STATS.roots_computed += 1
        return hash_object(
            {address: self.account_hash(address) for address in self._iter_addresses()}
        )

    def copy(self) -> "WorldState":
        """Independent deep copy of the whole state."""
        clone = WorldState()
        clone.restore(self.snapshot())
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "overlay" if self._base is not None else "state"
        return f"WorldState({kind}, accounts={len(self._accounts)}, journal={len(self._journal)})"
