"""ChainGateway: the transport-agnostic ledger API of the FL layer.

The FL layer never touches a :class:`~repro.chain.node.Node` directly —
every read, submission, and wait goes through a :class:`ChainGateway`, a
narrow JSON-RPC-flavored service protocol (``call`` / ``batch_call`` /
``submit`` / ``height`` / ``head_hash`` / ``has_contract`` / ``get_logs``
/ ``next_nonce`` / ``wait_for``).  That seam is what lets peers later run
out-of-process or against a remote chain without touching the FL code,
and it is where read batching/caching lives.

Two backends ship today:

* :class:`InProcessGateway` — wraps a local ``Node`` (plus the simulated
  p2p network for submissions and the event engine for waits).  Pure
  delegation: behavior is bit-identical to the pre-gateway direct calls,
  which the equivalence tests pin.
* :class:`BatchingGateway` — wraps any other gateway and coalesces the
  per-round fan-out of contract reads (registration checks, visible-
  submission polls, reputation reads, finalization polls) behind a
  head-keyed cache with a bounded staleness window.  Read-only contract
  state is a pure function of the canonical head, so serving repeated
  polls of an unchanged head from cache is *exactly* result-preserving —
  only the number of transport round trips changes (the property
  ``bench_chain_gateway.py`` measures).

Transport failures surface as typed :class:`~repro.errors.GatewayError`
subclasses — unknown contract, unknown method, reverted call, rejected
transaction, timed-out wait — identically across backends, so FL-layer
callers never catch raw ``KeyError`` or backend internals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Optional, Protocol, Sequence, runtime_checkable

from repro.chain.crypto import Address
from repro.chain.network import P2PNetwork
from repro.chain.node import Node
from repro.chain.transaction import Transaction
from repro.errors import (
    CallRevertedError,
    ContractNotFoundError,
    ContractRevertError,
    GatewayError,
    GatewayTimeoutError,
    MempoolError,
    MethodNotFoundError,
    NetworkError,
    SerializationError,
    TransactionRejectedError,
    UnknownContractError,
    UnknownMethodError,
)
from repro.utils.events import Simulator
from repro.utils.serialization import canonical_dumps

#: Default wait deadline (simulated seconds) when the caller gives none.
DEFAULT_WAIT_DEADLINE = 100_000.0

#: The gateway backends shipping today — the single source every layer
#: (scenario spec, driver config, CLI) validates backend names against.
GATEWAY_BACKENDS = ("inprocess", "batching")

#: Cache entries a :class:`BatchingGateway` keeps before sweeping stale ones.
BATCH_CACHE_LIMIT = 4096


def _payload_bytes(value: Any) -> int:
    """Wire-size estimate of one request/response payload."""
    try:
        return len(canonical_dumps(value))
    except SerializationError:
        return len(repr(value).encode("utf-8", errors="replace"))


@dataclass(frozen=True)
class CallRequest:
    """One read-only contract call (the unit ``batch_call`` coalesces)."""

    contract: Address
    method: str
    args: dict = field(default_factory=dict)

    def key(self) -> tuple:
        """Canonical identity of this read (cache / dedup key)."""
        return (self.contract, self.method, canonical_dumps(self.args))

    def wire_bytes(self) -> int:
        """Wire-size estimate of the encoded request."""
        return _payload_bytes({"to": self.contract, "method": self.method, "args": self.args})


@dataclass
class GatewayStats:
    """Per-gateway instrumentation: counts, bytes, round trips, latency.

    ``calls`` counts single-read round trips and ``batch_calls`` counts
    batched round trips (each batch is one trip carrying ``batched_reads``
    reads) — ``contract_call_round_trips`` is the number the batching
    benchmark compares across backends.  ``cache_hits`` / ``head_checks``
    are populated by the batching backend only.
    """

    calls: int = 0
    batch_calls: int = 0
    batched_reads: int = 0
    submits: int = 0
    height_reads: int = 0
    head_checks: int = 0
    contract_checks: int = 0
    log_queries: int = 0
    nonce_reads: int = 0
    waits: int = 0
    cache_hits: int = 0
    request_bytes: int = 0
    response_bytes: int = 0
    read_seconds: float = 0.0
    # Resilience telemetry (populated by the fault/retry decorators in
    # repro.faults.gateway; zero everywhere else).  ``backoff_seconds``
    # is deterministic simulated budget accounting, not wall clock, so it
    # stays in ``as_dict`` unlike ``read_seconds``.
    retries: int = 0
    faults_injected: int = 0
    deadline_misses: int = 0
    gave_up: int = 0
    deduped_submits: int = 0
    backoff_seconds: float = 0.0
    # Wire telemetry (populated by the out-of-process transport in
    # repro.runtime; all zeros for in-process backends).  The byte and
    # round-trip counters are deterministic functions of the run and stay
    # in ``as_dict``; the latency accumulators are wall clock and are
    # excluded like ``read_seconds``.
    wire_bytes_sent: int = 0
    wire_bytes_received: int = 0
    rpc_round_trips: int = 0
    wire_seconds: float = 0.0
    wire_method_seconds: dict = field(default_factory=dict)

    #: Wall-clock accumulators excluded from :meth:`as_dict` so result
    #: objects stay deterministic across identical runs.
    _WALL_CLOCK_FIELDS = ("read_seconds", "wire_seconds", "wire_method_seconds")

    @property
    def contract_call_round_trips(self) -> int:
        """Contract-read round trips this gateway performed."""
        return self.calls + self.batch_calls

    @property
    def requested_reads(self) -> int:
        """Contract reads asked of this gateway (before any coalescing)."""
        return self.calls + self.batched_reads

    def add(self, other: "GatewayStats") -> None:
        """Accumulate another gateway's counters (cohort aggregation)."""
        for spec in fields(self):
            mine = getattr(self, spec.name)
            theirs = getattr(other, spec.name)
            if isinstance(mine, dict):
                for key, value in theirs.items():
                    mine[key] = mine.get(key, 0.0) + value
            else:
                setattr(self, spec.name, mine + theirs)

    def as_dict(self) -> dict:
        """Counters plus the derived round-trip totals.

        The wall-clock latency accumulators (``read_seconds``,
        ``wire_seconds``, per-method wire latency) are deliberately left
        out: every other number here is a deterministic function of the
        run, and result objects compare equal across identical runs.  The
        latency accumulators stay readable on the object itself (the
        gateway benchmarks report them).
        """
        payload = {
            spec.name: getattr(self, spec.name)
            for spec in fields(self)
            if spec.name not in self._WALL_CLOCK_FIELDS
        }
        payload["contract_call_round_trips"] = self.contract_call_round_trips
        payload["requested_reads"] = self.requested_reads
        return payload


@runtime_checkable
class ChainGateway(Protocol):
    """The ledger service API the FL layer programs against.

    Implementations must expose a :class:`GatewayStats` as ``stats`` and
    raise :class:`~repro.errors.GatewayError` subclasses for transport
    failures.  All reads answer from the backend's canonical head view.
    """

    stats: GatewayStats

    def call(self, contract: Address, method: str, **args: Any) -> Any:
        """Read-only contract call (``eth_call``)."""
        ...

    def batch_call(self, requests: Sequence[CallRequest]) -> list[Any]:
        """Execute independent reads in one round trip, preserving order."""
        ...

    def submit(self, tx: Transaction) -> str:
        """Submit a signed transaction; returns its hash."""
        ...

    def height(self) -> int:
        """Canonical chain height."""
        ...

    def head_hash(self) -> str:
        """Canonical head block hash (the read-cache fingerprint)."""
        ...

    def has_contract(self, address: Address) -> bool:
        """True iff a contract is deployed at ``address`` in head state."""
        ...

    def get_logs(
        self,
        address: Optional[Address] = None,
        topic: Optional[str] = None,
        from_block: int = 0,
        to_block: Optional[int] = None,
    ) -> list:
        """Query contract events over the canonical range (``eth_getLogs``)."""
        ...

    def next_nonce(self, address: Address) -> int:
        """Nonce a wallet should use next (head nonce + pending count)."""
        ...

    def now(self) -> float:
        """Transport clock (simulated seconds in-process)."""
        ...

    def wait_for(
        self,
        predicate: Callable[[], bool],
        what: str,
        deadline: Optional[float] = None,
    ) -> float:
        """Advance the transport until ``predicate`` holds; returns the time."""
        ...


class InProcessGateway:
    """Gateway backend wrapping a local :class:`~repro.chain.node.Node`.

    ``network`` (when given) gossips submissions exactly as the pre-gateway
    drivers did; ``simulator`` backs ``wait_for`` and the transport clock.
    Everything is pure delegation, so results are bit-identical to calling
    the node directly — the contract the equivalence suite pins.

    The wrapped ``node`` stays reachable as ``.node`` for chain forensics
    (merkle evidence, receipts) and tests; FL-layer *code* must not use it
    (a seam test greps for that).

    ``track_bytes`` controls the request/response wire-size telemetry,
    which re-encodes every read payload (~2x the cost of a small
    in-process read, a few percent of an end-to-end run).  It stays on by
    default — the counters are deterministic and feed ``chain_stats()`` —
    but profiling-sensitive callers can switch it off; counts and latency
    are tracked either way.
    """

    def __init__(
        self,
        node: Node,
        network: Optional[P2PNetwork] = None,
        simulator: Optional[Simulator] = None,
        default_deadline: float = DEFAULT_WAIT_DEADLINE,
        track_bytes: bool = True,
    ) -> None:
        self.node = node
        self.network = network
        self.simulator = simulator
        self.default_deadline = default_deadline
        self.track_bytes = track_bytes
        self.stats = GatewayStats()

    # -- reads -------------------------------------------------------------

    def _execute_read(self, request: CallRequest) -> Any:
        """One contract read with transport errors mapped to gateway types."""
        started = time.perf_counter()
        try:
            value = self.node.call_contract(request.contract, request.method, **request.args)
        except ContractNotFoundError as exc:
            raise UnknownContractError(str(exc)) from exc
        except MethodNotFoundError as exc:
            raise UnknownMethodError(str(exc)) from exc
        except ContractRevertError as exc:
            raise CallRevertedError(exc.reason or str(exc)) from exc
        finally:
            self.stats.read_seconds += time.perf_counter() - started
        if self.track_bytes:
            self.stats.request_bytes += request.wire_bytes()
            self.stats.response_bytes += _payload_bytes(value)
        return value

    def call(self, contract: Address, method: str, **args: Any) -> Any:
        """Read-only contract call against the node's head state."""
        self.stats.calls += 1
        return self._execute_read(CallRequest(contract, method, args))

    def batch_call(self, requests: Sequence[CallRequest]) -> list[Any]:
        """Serve independent reads in one (in-process) round trip."""
        self.stats.batch_calls += 1
        self.stats.batched_reads += len(requests)
        return [self._execute_read(request) for request in requests]

    def height(self) -> int:
        """Canonical chain height."""
        self.stats.height_reads += 1
        return self.node.height

    def head_hash(self) -> str:
        """Canonical head hash — changes exactly when head state can."""
        self.stats.head_checks += 1
        return self.node.head.block_hash

    def has_contract(self, address: Address) -> bool:
        """Contract-deployed check at the head state."""
        self.stats.contract_checks += 1
        return self.node.has_contract(address)

    def get_logs(
        self,
        address: Optional[Address] = None,
        topic: Optional[str] = None,
        from_block: int = 0,
        to_block: Optional[int] = None,
    ) -> list:
        """Event query over the node's canonical receipts."""
        self.stats.log_queries += 1
        return self.node.get_logs(
            address=address, topic=topic, from_block=from_block, to_block=to_block
        )

    def next_nonce(self, address: Address) -> int:
        """Wallet nonce: head account nonce plus pending transactions."""
        self.stats.nonce_reads += 1
        return self.node.next_nonce_for(address)

    # -- writes ------------------------------------------------------------

    def submit(self, tx: Transaction) -> str:
        """Admit a signed transaction locally and gossip it (when wired).

        A mempool rejection (forged signature, stale nonce, unaffordable
        cost, pool full) surfaces as a typed
        :class:`~repro.errors.TransactionRejectedError`; benign duplicates
        are accepted silently, as on a real client.
        """
        self.stats.submits += 1
        if self.track_bytes:
            self.stats.request_bytes += _payload_bytes(
                {"to": tx.to, "method": tx.method, "args": tx.args, "nonce": tx.nonce}
            )
        if self.network is not None:
            if not self.network.broadcast_transaction(self.node.address, tx):
                raise TransactionRejectedError(
                    f"transaction {tx.tx_hash[:10]} rejected by the mempool"
                )
            return tx.tx_hash
        try:
            self.node.submit_transaction(tx)
        except MempoolError as exc:
            raise TransactionRejectedError(str(exc)) from exc
        return tx.tx_hash

    # -- clock / waits -----------------------------------------------------

    def now(self) -> float:
        """Simulated transport time (0.0 without a simulator)."""
        return self.simulator.now if self.simulator is not None else 0.0

    def wait_for(
        self,
        predicate: Callable[[], bool],
        what: str,
        deadline: Optional[float] = None,
    ) -> float:
        """Step the event engine until ``predicate`` holds.

        Raises :class:`~repro.errors.GatewayTimeoutError` (a
        :class:`~repro.errors.RoundError`) past the deadline and
        :class:`~repro.errors.NetworkError` if the simulation drains first
        — the exact semantics of the pre-gateway ``_wait_until``.
        """
        if self.simulator is None:
            raise GatewayError(f"gateway has no simulator to wait for {what}")
        self.stats.waits += 1
        sim = self.simulator
        limit = sim.now + (deadline if deadline is not None else self.default_deadline)
        while sim.now <= limit:
            if predicate():
                return sim.now
            if not sim.step():
                raise NetworkError(f"simulation drained while waiting for {what}")
        raise GatewayTimeoutError(f"timed out waiting for {what} at t={sim.now:.1f}")


@dataclass
class _CacheEntry:
    head: str
    at: float
    value: Any


class BatchingGateway:
    """Read-coalescing gateway decorator with a bounded staleness window.

    Contract reads (``call`` / ``batch_call`` / ``has_contract``) are
    served from a cache keyed by the canonical head hash: head state is
    immutable between head changes, so a hit returns exactly what a fresh
    round trip would — results are provably unchanged, only transport
    round trips shrink.  Entries additionally expire ``staleness``
    transport-seconds after they were fetched (defense in depth for a
    transport whose head signal lags).  ``batch_call`` answers hits
    locally and forwards only the misses as one inner round trip.

    Every lookup makes one fresh head observation (``head_hash``),
    counted separately in ``stats.head_checks`` — in-process that is a
    local field read; a remote backend is expected to serve it from a
    pushed new-heads subscription (the standard JSON-RPC pattern), not a
    per-read request, which is what keeps the coalescing a genuine
    round-trip win off-process.  Cached values are shared — callers must
    treat them as read-only (the FL layer does; the same rule a memoizing
    RPC proxy imposes).  Nonce reads and submissions always pass through.
    """

    def __init__(self, inner: ChainGateway, staleness: float = 5.0) -> None:
        if staleness <= 0:
            raise GatewayError(f"staleness window must be positive, got {staleness}")
        self.inner = inner
        self.staleness = staleness
        self.stats = GatewayStats()
        self._cache: dict[tuple, _CacheEntry] = {}

    # -- cache core --------------------------------------------------------

    def _fresh(self, entry: _CacheEntry, head: str, now: float) -> bool:
        return entry.head == head and (now - entry.at) <= self.staleness

    def _remember(self, key: tuple, head: str, now: float, value: Any) -> None:
        if len(self._cache) >= BATCH_CACHE_LIMIT:
            self._cache = {
                k: entry for k, entry in self._cache.items() if self._fresh(entry, head, now)
            }
        self._cache[key] = _CacheEntry(head=head, at=now, value=value)

    def _observe(self) -> tuple[str, float]:
        """One head observation shared by every read of a lookup.

        A transport exposing ``observe_head()`` (the out-of-process
        gateway does) serves head hash and clock in a single round trip;
        otherwise two inner reads — free in-process, where both are
        local field reads.
        """
        self.stats.head_checks += 1
        observe = getattr(self.inner, "observe_head", None)
        if observe is not None:
            return observe()
        return self.inner.head_hash(), self.inner.now()

    # -- reads -------------------------------------------------------------

    def call(self, contract: Address, method: str, **args: Any) -> Any:
        """Cached read; one inner round trip per (head, request)."""
        self.stats.calls += 1
        request = CallRequest(contract, method, args)
        key = ("call",) + request.key()
        head, now = self._observe()
        entry = self._cache.get(key)
        if entry is not None and self._fresh(entry, head, now):
            self.stats.cache_hits += 1
            return entry.value
        value = self.inner.call(contract, method, **args)
        self._remember(key, head, now, value)
        return value

    def batch_call(self, requests: Sequence[CallRequest]) -> list[Any]:
        """Answer hits from cache; forward misses as one inner round trip."""
        self.stats.batch_calls += 1
        self.stats.batched_reads += len(requests)
        head, now = self._observe()
        values: list[Any] = [None] * len(requests)
        misses: list[tuple[int, tuple, CallRequest]] = []
        for index, request in enumerate(requests):
            key = ("call",) + request.key()
            entry = self._cache.get(key)
            if entry is not None and self._fresh(entry, head, now):
                self.stats.cache_hits += 1
                values[index] = entry.value
            else:
                misses.append((index, key, request))
        if misses:
            fetched = self.inner.batch_call([request for _, _, request in misses])
            for (index, key, _request), value in zip(misses, fetched):
                values[index] = value
                self._remember(key, head, now, value)
        return values

    def has_contract(self, address: Address) -> bool:
        """Cached contract-deployed check."""
        self.stats.contract_checks += 1
        key = ("has_contract", address)
        head, now = self._observe()
        entry = self._cache.get(key)
        if entry is not None and self._fresh(entry, head, now):
            self.stats.cache_hits += 1
            return entry.value
        value = self.inner.has_contract(address)
        self._remember(key, head, now, value)
        return value

    # -- pass-throughs -----------------------------------------------------

    def height(self) -> int:
        """Canonical height (uncached: it IS the freshness signal)."""
        self.stats.height_reads += 1
        return self.inner.height()

    def head_hash(self) -> str:
        """Canonical head hash from the inner transport."""
        self.stats.head_checks += 1
        return self.inner.head_hash()

    def get_logs(
        self,
        address: Optional[Address] = None,
        topic: Optional[str] = None,
        from_block: int = 0,
        to_block: Optional[int] = None,
    ) -> list:
        """Event queries pass through (range queries are already indexed)."""
        self.stats.log_queries += 1
        return self.inner.get_logs(
            address=address, topic=topic, from_block=from_block, to_block=to_block
        )

    def next_nonce(self, address: Address) -> int:
        """Never cached: the pending count moves with every submission."""
        self.stats.nonce_reads += 1
        return self.inner.next_nonce(address)

    def submit(self, tx: Transaction) -> str:
        """Submissions pass through; head-keyed entries stay valid."""
        self.stats.submits += 1
        return self.inner.submit(tx)

    def now(self) -> float:
        """Inner transport clock."""
        return self.inner.now()

    def wait_for(
        self,
        predicate: Callable[[], bool],
        what: str,
        deadline: Optional[float] = None,
    ) -> float:
        """Delegate the wait; polled reads hit the cache between blocks."""
        self.stats.waits += 1
        return self.inner.wait_for(predicate, what, deadline=deadline)


def gateway_layers(gateway: ChainGateway) -> list[ChainGateway]:
    """Every layer of a decorated gateway stack, outermost first.

    Decorators expose the wrapped gateway as ``.inner`` (the convention
    ``BatchingGateway`` set and the fault/retry decorators follow), so
    walking ``inner`` enumerates the whole stack down to the transport.
    """
    layers: list[ChainGateway] = [gateway]
    while hasattr(layers[-1], "inner"):
        layers.append(layers[-1].inner)
    return layers


def stacked_stats(gateway: ChainGateway) -> GatewayStats:
    """Sum of every layer's counters in a decorated gateway stack.

    Mid-stack telemetry (``faults_injected`` on the fault layer,
    ``retries`` on the resilience layer, ``cache_hits`` on the batching
    layer) lives on different layers; this is the one view that sees all
    of it at once.
    """
    total = GatewayStats()
    for layer in gateway_layers(gateway):
        total.add(layer.stats)
    return total


def transport_stats(gateway: ChainGateway) -> GatewayStats:
    """The stats of the gateway actually touching the transport.

    For a decorated gateway (``BatchingGateway``) that is the innermost
    backend's counters — the real round trips; for a plain backend it is
    its own counters.
    """
    return gateway_layers(gateway)[-1].stats
