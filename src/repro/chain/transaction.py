"""Signed transactions and execution receipts.

A transaction is either a value transfer, a contract deployment (``to`` is
``None``), or a contract call (``to`` is a contract address, ``method`` and
``args`` describe the invocation).  The FL peers use contract calls to
submit model commitments and read aggregation state — exactly the web3
interaction pattern of the paper's NodeJS pipeline.

Validation is one-shot: the signing payload, digest, transaction hash, and
signature-verification verdict are all memoized on the instance, so the
three verification sites on a transaction's lifetime (mempool admission,
block validation, execution) pay for one encode and one crypto check total.
The cache is mutation-safe — assigning any signed field drops it, and
in-place edits of the mutable containers (``args``, ``public_bundle``) are
caught by re-probing their (small) canonical encoding on every cached read
— so tampering after signing is still detected.  :data:`VALIDATION_STATS` counts the real work for the
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.chain.crypto import Address, KeyPair, Signature, recover_check
from repro.errors import InvalidSignatureError
from repro.utils.hashing import keccak_like, sha256_bytes
from repro.utils.serialization import canonical_dumps


@dataclass
class ValidationStats:
    """Counters of actual (non-memoized) transaction validation work."""

    payload_encodes: int = 0        # full signing-payload serializations
    signatures_verified: int = 0    # crypto verifications actually run
    signature_cache_hits: int = 0   # verifications answered from the cache

    def reset(self) -> None:
        """Zero the counters (tests/benchmarks call this between phases)."""
        self.payload_encodes = 0
        self.signatures_verified = 0
        self.signature_cache_hits = 0

    def as_dict(self) -> dict:
        return {
            "payload_encodes": self.payload_encodes,
            "signatures_verified": self.signatures_verified,
            "signature_cache_hits": self.signature_cache_hits,
        }


#: Process-wide validation counters; the block-execution benchmark pins
#: these to one signature verification per transaction lifetime.
VALIDATION_STATS = ValidationStats()

#: Assigning any of these fields invalidates the memoized payload/digest/
#: hash/verdict (``signature``/``public_bundle`` feed tx_hash and verify).
_CACHE_FIELDS = frozenset(
    {
        "sender",
        "to",
        "nonce",
        "value",
        "gas_limit",
        "gas_price",
        "method",
        "args",
        "data",
        "signature",
        "public_bundle",
    }
)


@dataclass
class Transaction:
    """An Ethereum-style transaction.

    Attributes
    ----------
    sender:
        Address of the originating account.
    to:
        Destination address, or ``None`` for contract creation.
    nonce:
        Sender's transaction count; enforces ordering and replay protection.
    value:
        Wei-like units transferred to ``to``.
    gas_limit / gas_price:
        Standard Ethereum fee fields.
    method / args:
        For contract calls: the method name and canonical-serializable args.
    data:
        Raw payload bytes (used for intrinsic-gas sizing; carries the model
        weight commitment for FL submissions).
    """

    sender: Address
    to: Optional[Address]
    nonce: int
    value: int = 0
    gas_limit: int = 10_000_000
    gas_price: int = 1
    method: str = ""
    args: dict[str, Any] = field(default_factory=dict)
    data: bytes = b""
    signature: Optional[Signature] = None
    public_bundle: Optional[dict] = None

    # ------------------------------------------------------------------
    # Identity and signing (memoized)
    # ------------------------------------------------------------------

    def __setattr__(self, name: str, value: Any) -> None:
        if name in _CACHE_FIELDS and "_memo" in self.__dict__:
            del self.__dict__["_memo"]
        object.__setattr__(self, name, value)

    def _cache(self) -> dict:
        """Memoized payload/digest, re-validated against in-place edits.

        Field assignment drops the cache via ``__setattr__``.  The two
        mutable containers — the args dict and the public-key bundle —
        can be edited in place, so their (small) canonical encoding is
        re-probed on every read and a mismatch rebuilds the cache
        (``Signature`` is frozen and ``data`` is immutable bytes, so
        every tamper vector is covered).
        """
        memo = self.__dict__.get("_memo")
        probe = canonical_dumps({"args": self.args, "bundle": self.public_bundle})
        if memo is None or memo["args_probe"] != probe:
            payload = canonical_dumps(
                {
                    "sender": self.sender,
                    "to": self.to,
                    "nonce": self.nonce,
                    "value": self.value,
                    "gas_limit": self.gas_limit,
                    "gas_price": self.gas_price,
                    "method": self.method,
                    "args": self.args,
                    "data": self.data,
                }
            )
            VALIDATION_STATS.payload_encodes += 1
            memo = {
                "args_probe": probe,
                "payload": payload,
                "digest": sha256_bytes(payload),
            }
            object.__setattr__(self, "_memo", memo)
        return memo

    def signing_payload(self) -> bytes:
        """Canonical bytes covered by the signature (everything but it)."""
        return self._cache()["payload"]

    def digest(self) -> bytes:
        """32-byte digest of the signing payload."""
        return self._cache()["digest"]

    @property
    def tx_hash(self) -> str:
        """Transaction hash (includes the signature, like Ethereum)."""
        memo = self._cache()
        cached = memo.get("tx_hash")
        if cached is None:
            sig = self.signature.to_dict() if self.signature else None
            cached = keccak_like(memo["payload"] + canonical_dumps({"sig": sig}))
            memo["tx_hash"] = cached
        return cached

    def sign_with(self, keypair: KeyPair) -> "Transaction":
        """Sign in place with ``keypair`` and return ``self``.

        Raises :class:`InvalidSignatureError` if the keypair's address does
        not match the declared sender — catching wiring bugs early.
        """
        if keypair.address != self.sender:
            raise InvalidSignatureError(
                f"keypair address {keypair.address} != tx sender {self.sender}"
            )
        self.signature = keypair.sign(self.digest())
        self.public_bundle = keypair.public_bundle
        return self

    def verify_signature(self) -> bool:
        """True iff the signature verifies and recovers the declared sender.

        The crypto check runs once per (payload, signature) lifetime; every
        later call — block validation, execution, cross-node re-validation
        of a gossiped instance — is a cache hit.
        """
        if self.signature is None or self.public_bundle is None:
            return False
        memo = self._cache()
        verdict = memo.get("verdict")
        if verdict is None:
            verdict = recover_check(self.public_bundle, memo["digest"], self.signature, self.sender)
            VALIDATION_STATS.signatures_verified += 1
            memo["verdict"] = verdict
        else:
            VALIDATION_STATS.signature_cache_hits += 1
        return verdict

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------

    @property
    def is_create(self) -> bool:
        """True for contract-deployment transactions."""
        return self.to is None

    @property
    def is_call(self) -> bool:
        """True for contract-call transactions."""
        return self.to is not None and bool(self.method)

    def max_cost(self) -> int:
        """Upper bound on sender debit: value + gas_limit * gas_price."""
        return self.value + self.gas_limit * self.gas_price

    def to_dict(self) -> dict:
        """Wire representation (used by gossip and tests)."""
        return {
            "sender": self.sender,
            "to": self.to,
            "nonce": self.nonce,
            "value": self.value,
            "gas_limit": self.gas_limit,
            "gas_price": self.gas_price,
            "method": self.method,
            "args": self.args,
            "data": self.data,
            "signature": self.signature.to_dict() if self.signature else None,
            "public_bundle": self.public_bundle,
        }

    @staticmethod
    def from_dict(payload: dict) -> "Transaction":
        """Inverse of :meth:`to_dict`."""
        sig = payload.get("signature")
        return Transaction(
            sender=payload["sender"],
            to=payload["to"],
            nonce=payload["nonce"],
            value=payload.get("value", 0),
            gas_limit=payload.get("gas_limit", 10_000_000),
            gas_price=payload.get("gas_price", 1),
            method=payload.get("method", ""),
            args=payload.get("args", {}),
            data=payload.get("data", b""),
            signature=Signature.from_dict(sig) if sig else None,
            public_bundle=payload.get("public_bundle"),
        )


@dataclass
class LogEntry:
    """An event emitted by a contract during execution."""

    address: Address
    topic: str
    payload: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Canonical-serializable form (cold receipt storage)."""
        return {"address": self.address, "topic": self.topic, "payload": self.payload}

    @staticmethod
    def from_dict(payload: dict) -> "LogEntry":
        """Inverse of :meth:`to_dict`."""
        return LogEntry(
            address=payload["address"],
            topic=payload["topic"],
            payload=payload.get("payload", {}),
        )


@dataclass
class Receipt:
    """Execution result of a transaction included in a block."""

    tx_hash: str
    success: bool
    gas_used: int
    block_hash: str = ""
    block_number: int = -1
    contract_address: Optional[Address] = None
    return_value: Any = None
    revert_reason: str = ""
    logs: list[LogEntry] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        """Convenience inverse of ``success``."""
        return not self.success

    def to_dict(self) -> dict:
        """Canonical-serializable form (cold receipt storage)."""
        return {
            "tx_hash": self.tx_hash,
            "success": self.success,
            "gas_used": self.gas_used,
            "block_hash": self.block_hash,
            "block_number": self.block_number,
            "contract_address": self.contract_address,
            "return_value": self.return_value,
            "revert_reason": self.revert_reason,
            "logs": [entry.to_dict() for entry in self.logs],
        }

    @staticmethod
    def from_dict(payload: dict) -> "Receipt":
        """Inverse of :meth:`to_dict`."""
        return Receipt(
            tx_hash=payload["tx_hash"],
            success=payload["success"],
            gas_used=payload["gas_used"],
            block_hash=payload.get("block_hash", ""),
            block_number=payload.get("block_number", -1),
            contract_address=payload.get("contract_address"),
            return_value=payload.get("return_value"),
            revert_reason=payload.get("revert_reason", ""),
            logs=[LogEntry.from_dict(entry) for entry in payload.get("logs", [])],
        )
