"""Signed transactions and execution receipts.

A transaction is either a value transfer, a contract deployment (``to`` is
``None``), or a contract call (``to`` is a contract address, ``method`` and
``args`` describe the invocation).  The FL peers use contract calls to
submit model commitments and read aggregation state — exactly the web3
interaction pattern of the paper's NodeJS pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.chain.crypto import Address, KeyPair, Signature, recover_check
from repro.errors import InvalidSignatureError
from repro.utils.hashing import keccak_like
from repro.utils.serialization import canonical_dumps


@dataclass
class Transaction:
    """An Ethereum-style transaction.

    Attributes
    ----------
    sender:
        Address of the originating account.
    to:
        Destination address, or ``None`` for contract creation.
    nonce:
        Sender's transaction count; enforces ordering and replay protection.
    value:
        Wei-like units transferred to ``to``.
    gas_limit / gas_price:
        Standard Ethereum fee fields.
    method / args:
        For contract calls: the method name and canonical-serializable args.
    data:
        Raw payload bytes (used for intrinsic-gas sizing; carries the model
        weight commitment for FL submissions).
    """

    sender: Address
    to: Optional[Address]
    nonce: int
    value: int = 0
    gas_limit: int = 10_000_000
    gas_price: int = 1
    method: str = ""
    args: dict[str, Any] = field(default_factory=dict)
    data: bytes = b""
    signature: Optional[Signature] = None
    public_bundle: Optional[dict] = None

    # ------------------------------------------------------------------
    # Identity and signing
    # ------------------------------------------------------------------

    def signing_payload(self) -> bytes:
        """Canonical bytes covered by the signature (everything but it)."""
        return canonical_dumps(
            {
                "sender": self.sender,
                "to": self.to,
                "nonce": self.nonce,
                "value": self.value,
                "gas_limit": self.gas_limit,
                "gas_price": self.gas_price,
                "method": self.method,
                "args": self.args,
                "data": self.data,
            }
        )

    def digest(self) -> bytes:
        """32-byte digest of the signing payload."""
        from repro.utils.hashing import sha256_bytes

        return sha256_bytes(self.signing_payload())

    @property
    def tx_hash(self) -> str:
        """Transaction hash (includes the signature, like Ethereum)."""
        sig = self.signature.to_dict() if self.signature else None
        return keccak_like(self.signing_payload() + canonical_dumps({"sig": sig}))

    def sign_with(self, keypair: KeyPair) -> "Transaction":
        """Sign in place with ``keypair`` and return ``self``.

        Raises :class:`InvalidSignatureError` if the keypair's address does
        not match the declared sender — catching wiring bugs early.
        """
        if keypair.address != self.sender:
            raise InvalidSignatureError(
                f"keypair address {keypair.address} != tx sender {self.sender}"
            )
        self.signature = keypair.sign(self.digest())
        self.public_bundle = keypair.public_bundle
        return self

    def verify_signature(self) -> bool:
        """True iff the signature verifies and recovers the declared sender."""
        if self.signature is None or self.public_bundle is None:
            return False
        return recover_check(self.public_bundle, self.digest(), self.signature, self.sender)

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------

    @property
    def is_create(self) -> bool:
        """True for contract-deployment transactions."""
        return self.to is None

    @property
    def is_call(self) -> bool:
        """True for contract-call transactions."""
        return self.to is not None and bool(self.method)

    def max_cost(self) -> int:
        """Upper bound on sender debit: value + gas_limit * gas_price."""
        return self.value + self.gas_limit * self.gas_price

    def to_dict(self) -> dict:
        """Wire representation (used by gossip and tests)."""
        return {
            "sender": self.sender,
            "to": self.to,
            "nonce": self.nonce,
            "value": self.value,
            "gas_limit": self.gas_limit,
            "gas_price": self.gas_price,
            "method": self.method,
            "args": self.args,
            "data": self.data,
            "signature": self.signature.to_dict() if self.signature else None,
            "public_bundle": self.public_bundle,
        }

    @staticmethod
    def from_dict(payload: dict) -> "Transaction":
        """Inverse of :meth:`to_dict`."""
        sig = payload.get("signature")
        return Transaction(
            sender=payload["sender"],
            to=payload["to"],
            nonce=payload["nonce"],
            value=payload.get("value", 0),
            gas_limit=payload.get("gas_limit", 10_000_000),
            gas_price=payload.get("gas_price", 1),
            method=payload.get("method", ""),
            args=payload.get("args", {}),
            data=payload.get("data", b""),
            signature=Signature.from_dict(sig) if sig else None,
            public_bundle=payload.get("public_bundle"),
        )


@dataclass
class LogEntry:
    """An event emitted by a contract during execution."""

    address: Address
    topic: str
    payload: dict[str, Any] = field(default_factory=dict)


@dataclass
class Receipt:
    """Execution result of a transaction included in a block."""

    tx_hash: str
    success: bool
    gas_used: int
    block_hash: str = ""
    block_number: int = -1
    contract_address: Optional[Address] = None
    return_value: Any = None
    revert_reason: str = ""
    logs: list[LogEntry] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        """Convenience inverse of ``success``."""
        return not self.success
