"""Ethereum-style gas accounting.

The paper configures its private chain "without block size and transaction
size constraints ... we ensure that the transaction size exceeds the model's
size" — i.e. gas limits are set generously so model-bearing transactions
always fit.  We model the same: a gas schedule with Ethereum-like constants,
an intrinsic-gas function over payload size, and per-operation charging used
by the contract runtime.  The default block gas limit is effectively
unbounded, matching the paper; benchmarks can lower it to study contention.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OutOfGasError


@dataclass(frozen=True)
class GasSchedule:
    """Gas constants, mirroring Ethereum's fee schedule where sensible."""

    tx_base: int = 21_000                 # G_transaction
    tx_data_zero_byte: int = 4            # G_txdatazero
    tx_data_nonzero_byte: int = 16        # G_txdatanonzero
    tx_create: int = 32_000               # G_txcreate
    sstore_set: int = 20_000              # write a fresh storage slot
    sstore_update: int = 5_000            # overwrite an existing slot
    sload: int = 800                      # read a storage slot
    log_base: int = 375                   # emit an event
    log_data_byte: int = 8
    call_base: int = 700                  # contract-to-contract call
    step: int = 1                         # per metered python-op step
    memory_byte: int = 3                  # per byte of large value stored

    def data_gas(self, payload: bytes) -> int:
        """Intrinsic calldata gas: zero bytes are cheaper than nonzero."""
        zeros = payload.count(0)
        return zeros * self.tx_data_zero_byte + (len(payload) - zeros) * self.tx_data_nonzero_byte


DEFAULT_SCHEDULE = GasSchedule()

#: Effectively unbounded block gas limit, matching the paper's configuration
#: of Ethereum "without block size and transaction size constraints".
UNBOUNDED_BLOCK_GAS = 10**15


def intrinsic_gas(payload: bytes, is_create: bool = False, schedule: GasSchedule = DEFAULT_SCHEDULE) -> int:
    """Gas charged before any execution happens (Ethereum yellow-paper g0)."""
    gas = schedule.tx_base + schedule.data_gas(payload)
    if is_create:
        gas += schedule.tx_create
    return gas


class GasMeter:
    """Tracks gas consumption during contract execution.

    Raises :class:`OutOfGasError` the moment the budget is exhausted; the
    runtime catches it and rolls back state changes.
    """

    def __init__(self, limit: int, schedule: GasSchedule = DEFAULT_SCHEDULE) -> None:
        if limit < 0:
            raise ValueError("gas limit must be non-negative")
        self.limit = int(limit)
        self.used = 0
        self.schedule = schedule

    @property
    def remaining(self) -> int:
        """Gas still available."""
        return self.limit - self.used

    def charge(self, amount: int, what: str = "op") -> None:
        """Consume ``amount`` gas or raise :class:`OutOfGasError`."""
        if amount < 0:
            raise ValueError("cannot charge negative gas")
        if self.used + amount > self.limit:
            self.used = self.limit
            raise OutOfGasError(f"out of gas charging {amount} for {what} (limit={self.limit})")
        self.used += amount

    def charge_sstore(self, fresh: bool, value_size: int = 0) -> None:
        """Charge a storage write, plus a per-byte fee for large values."""
        base = self.schedule.sstore_set if fresh else self.schedule.sstore_update
        self.charge(base + value_size * self.schedule.memory_byte, "sstore")

    def charge_sload(self) -> None:
        """Charge a storage read."""
        self.charge(self.schedule.sload, "sload")

    def charge_log(self, data_size: int) -> None:
        """Charge an event emission."""
        self.charge(self.schedule.log_base + data_size * self.schedule.log_data_byte, "log")
