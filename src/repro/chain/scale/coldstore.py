"""Append-only, content-addressed cold storage for chain payloads.

One :class:`ColdStore` backs a whole cohort: blocks, receipt lists, and
state snapshots are identical across nodes (they are consensus data), so
the store is keyed by content identity (block hash, ``receipts:<hash>``,
``snapshot:<hash>``) and the first writer pays the encode while every
other node's ``put`` is a dedup hit.  Payloads are codec-v2 canonical
JSON (:func:`repro.utils.serialization.canonical_dumps`), appended to a
single anonymous segment file (``tempfile.TemporaryFile`` — the OS
reclaims it when the run exits) with an in-memory ``key -> (offset,
length)`` index.  Reads go through a small decoded-payload LRU so the
common access pattern — a burst of lookups against one cold block —
decodes once.

This module lives in ``repro/chain/scale/`` deliberately: it is the
library's only file-I/O surface, and the ``io-discipline`` lint rule
keeps it that way.
"""

from __future__ import annotations

import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.errors import ChainError
from repro.utils.serialization import canonical_dumps, canonical_loads


class ColdStoreError(ChainError):
    """Unknown key or corrupt segment read."""


@dataclass
class ColdStoreStats:
    """Counters surfaced in ``chain_stats()["storage"]``."""

    puts: int = 0            # payloads actually encoded and appended
    dedup_hits: int = 0      # put() calls answered by key presence
    reads: int = 0           # get() calls
    cache_hits: int = 0      # get() calls served from the decoded LRU
    bytes_written: int = 0   # segment-file growth

    def as_dict(self) -> dict:
        return {
            "puts": self.puts,
            "dedup_hits": self.dedup_hits,
            "reads": self.reads,
            "cache_hits": self.cache_hits,
            "bytes_written": self.bytes_written,
        }


class ColdStore:
    """Content-addressed segment file with a bounded decoded-payload LRU."""

    def __init__(self, cache_size: int = 32) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self._segment = tempfile.TemporaryFile(prefix="repro-coldstore-")
        self._index: dict[str, tuple[int, int]] = {}
        self._cache: "OrderedDict[str, Any]" = OrderedDict()
        self._cache_size = cache_size
        self._write_offset = 0
        self.stats = ColdStoreStats()

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def keys(self) -> Iterator[str]:
        """Stored keys, insertion-ordered."""
        return iter(self._index)

    def put(self, key: str, payload: Any) -> bool:
        """Store ``payload`` under ``key``; content-addressed, so a
        repeated key is a dedup hit and the payload is not re-encoded.

        Returns ``True`` when the payload was actually written.
        """
        if key in self._index:
            self.stats.dedup_hits += 1
            return False
        encoded = canonical_dumps(payload)
        self._segment.seek(self._write_offset)
        self._segment.write(encoded)
        self._index[key] = (self._write_offset, len(encoded))
        self._write_offset += len(encoded)
        self.stats.puts += 1
        self.stats.bytes_written += len(encoded)
        return True

    def get(self, key: str) -> Any:
        """Decode and return the payload stored under ``key``.

        The LRU caches decoded payloads; callers must treat the returned
        object as immutable (it is shared with later cache hits).
        """
        self.stats.reads += 1
        if key in self._cache:
            self.stats.cache_hits += 1
            self._cache.move_to_end(key)
            return self._cache[key]
        try:
            offset, length = self._index[key]
        except KeyError:
            raise ColdStoreError(f"no cold entry for {key!r}") from None
        self._segment.seek(offset)
        raw = self._segment.read(length)
        if len(raw) != length:
            raise ColdStoreError(f"truncated segment read for {key!r}")
        payload = canonical_loads(raw)
        if self._cache_size:
            self._cache[key] = payload
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return payload

    def bytes_stored(self) -> int:
        """Total segment-file bytes currently indexed."""
        return self._write_offset

    def close(self) -> None:
        """Release the segment file (the store becomes unusable)."""
        self._segment.close()
        self._index.clear()
        self._cache.clear()
