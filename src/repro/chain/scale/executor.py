"""Deterministic parallel transaction execution (speculate → merge).

The scheduler exploits what the PR-2 journal already knows: every state
mutation a transaction makes is one undo record naming the touched key.
Execution proceeds in two phases:

1. **Speculate.**  Every transaction runs against a *tracking overlay* of
   the pre-block state — a copy-on-write child that records the exact
   key set the transaction read (balances, nonces, code, storage slots)
   while the journal records what it wrote.  Speculations are mutually
   independent, so they can run inline, or fan out over a fork-based
   process pool at any worker count.
2. **Merge.**  Transactions are committed in canonical block order.  A
   transaction whose read+write set is disjoint from everything earlier
   transactions wrote is *clean*: its speculated forward diff (final
   values per touched key) is applied through the journaled setters and
   its speculated receipt is reused verbatim.  Any overlap — or a failed
   speculation — makes it *dirty*: it re-executes serially against the
   real state, exactly as the serial path would have.

Byte-identity argument: merge processes transactions in block order, so
when transaction *i* is considered, the state equals the serial state
after transactions ``0..i-1``.  A clean transaction read nothing those
transactions wrote, hence its speculated execution — reads, gas, logs,
writes — is what serial execution would have produced; applying its
final values yields the serial post-state.  Induction carries this to
the last transaction, so block hashes, receipts, and state roots are
identical at any worker count (the node's state-root check on import is
a second, independent enforcement of the same property).

Miner fees do not commute with balance reads, so speculation suppresses
the per-transaction miner credit (``credit_miner=False``); the merge
credits the exact fee in order for clean transactions, and any
transaction that reads or writes the miner's balance — including
``sender == miner`` — is forced dirty.

This module must not import :mod:`repro.chain.node`; the node passes its
transaction-execution callable in, keeping the dependency one-way.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.chain.crypto import Address
from repro.chain.state import WorldState
from repro.chain.transaction import Receipt, Transaction
from repro.errors import ChainError

#: ``execute(state, tx, credit_miner) -> Receipt`` — the node's bound
#: transaction executor with block number/timestamp/miner already applied.
ExecuteFn = Callable[[WorldState, Transaction, bool], Receipt]


@dataclass
class ExecutionStats:
    """Per-node scheduler counters (``chain_stats()["execution"]``)."""

    parallel_blocks: int = 0      # blocks merged from speculations
    serial_blocks: int = 0        # blocks below the parallel threshold
    speculated_txs: int = 0       # transactions speculatively executed
    clean_txs: int = 0            # merged from their forward diff
    dirty_txs: int = 0            # re-executed serially (conflict/miner)
    failed_speculations: int = 0  # speculations that raised (forced dirty)
    pool_rounds: int = 0          # speculation rounds run on a process pool
    pool_fallbacks: int = 0       # pool unavailable -> inline speculation

    def as_dict(self) -> dict:
        return {
            "parallel_blocks": self.parallel_blocks,
            "serial_blocks": self.serial_blocks,
            "speculated_txs": self.speculated_txs,
            "clean_txs": self.clean_txs,
            "dirty_txs": self.dirty_txs,
            "failed_speculations": self.failed_speculations,
            "pool_rounds": self.pool_rounds,
            "pool_fallbacks": self.pool_fallbacks,
        }


@dataclass
class SpeculationResult:
    """What one speculative execution learned about its transaction."""

    index: int
    ok: bool
    reads: frozenset = frozenset()
    writes: frozenset = frozenset()
    diff: dict = field(default_factory=dict)
    receipt: Optional[Receipt] = None


class _TrackingOverlay(WorldState):
    """Copy-on-write overlay that records the keys read through it.

    Read keys: ``("b", addr)`` balance, ``("n", addr)`` nonce,
    ``("c", addr)`` code, ``("s", addr, key)`` one storage slot, and the
    conservative whole-account marker ``("k", addr)`` for prefix scans
    (a scan's result changes when *any* slot of the account appears or
    disappears).  Write keys come from the journal, not from tracking.
    """

    def __init__(self, base: WorldState) -> None:
        super().__init__(base=base)
        self.reads: set[tuple] = set()

    def balance_of(self, address: Address) -> int:
        self.reads.add(("b", address))
        return super().balance_of(address)

    def nonce_of(self, address: Address) -> int:
        self.reads.add(("n", address))
        return super().nonce_of(address)

    def is_contract(self, address: Address) -> bool:
        self.reads.add(("c", address))
        return super().is_contract(address)

    def contract_name_of(self, address: Address):
        self.reads.add(("c", address))
        return super().contract_name_of(address)

    def storage_get(self, address: Address, key: str, default: Any = None) -> Any:
        self.reads.add(("s", address, key))
        return super().storage_get(address, key, default)

    def storage_has(self, address: Address, key: str) -> bool:
        self.reads.add(("s", address, key))
        return super().storage_has(address, key)

    def storage_keys(self, address: Address, prefix: str = "") -> list[str]:
        self.reads.add(("k", address))
        return super().storage_keys(address, prefix)


def _record_write_key(record: tuple, writes: set[tuple]) -> None:
    """Map one journal undo record to its conflict key (``added`` has no
    value of its own — the mutation that follows it carries the key)."""
    kind = record[0]
    if kind == "balance":
        writes.add(("b", record[1]))
    elif kind == "nonce":
        writes.add(("n", record[1]))
    elif kind == "code":
        writes.add(("c", record[1]))
    elif kind == "sstore":
        writes.add(("s", record[1], record[2]))


def _extract_diff(overlay: _TrackingOverlay, mark: int) -> tuple[frozenset, dict]:
    """Write keys plus the forward diff (final values) of a speculation.

    The diff maps address -> per-field final values; repeated writes to
    one key collapse because finals are read from the overlay's account
    objects after execution finished.
    """
    writes: set[tuple] = set()
    diff: dict[Address, dict] = {}
    for record in overlay.journal_records_since(mark):
        kind = record[0]
        if kind == "added":
            continue
        _record_write_key(record, writes)
        address = record[1]
        account = overlay.account(address)
        entry = diff.setdefault(address, {"storage_set": {}, "storage_del": []})
        if kind == "balance":
            entry["balance"] = account.balance
        elif kind == "nonce":
            entry["nonce"] = account.nonce
        elif kind == "code":
            entry["contract_name"] = account.contract_name
        elif kind == "sstore":
            key = record[2]
            if key in account.storage:
                entry["storage_set"][key] = account.storage[key]
                if key in entry["storage_del"]:
                    entry["storage_del"].remove(key)
            elif key not in entry["storage_del"]:
                entry["storage_del"].append(key)
                entry["storage_set"].pop(key, None)
    return frozenset(writes), diff


def _apply_diff(state: WorldState, diff: dict) -> None:
    """Install a clean transaction's final values through the journaled
    setters, in a deterministic (sorted) order."""
    for address in sorted(diff):
        entry = diff[address]
        if "balance" in entry:
            state.set_balance(address, entry["balance"])
        if "nonce" in entry:
            state.set_nonce(address, entry["nonce"])
        if "contract_name" in entry:
            state.deploy(address, entry["contract_name"])
        for key in sorted(entry["storage_set"]):
            state.storage_set(address, key, entry["storage_set"][key])
        for key in sorted(entry["storage_del"]):
            state.storage_delete(address, key)


def _speculate_one(
    execute: ExecuteFn,
    base: WorldState,
    tx: Transaction,
    index: int,
) -> SpeculationResult:
    """Run one transaction on a tracking overlay of the pre-block state."""
    overlay = _TrackingOverlay(base)
    mark = overlay.checkpoint()
    try:
        receipt = execute(overlay, tx, False)
    except ChainError:
        overlay.rollback(mark)  # overlay is discarded; discharge the mark
        return SpeculationResult(index=index, ok=False)
    writes, diff = _extract_diff(overlay, mark)
    return SpeculationResult(
        index=index,
        ok=True,
        reads=frozenset(overlay.reads),
        writes=writes,
        diff=diff,
        receipt=receipt,
    )


def speculate_inline(
    execute: ExecuteFn,
    base: WorldState,
    txs: Sequence[Transaction],
) -> list[SpeculationResult]:
    """Speculate every transaction in-process (worker count 0)."""
    return [_speculate_one(execute, base, tx, i) for i, tx in enumerate(txs)]


# Fork-pool plumbing: the parent sets the module global, then forks; the
# children inherit the live objects, so nothing but index chunks crosses
# the pipe on the way in and picklable SpeculationResults on the way out.
_FORK_CONTEXT: dict = {}


def _speculate_chunk(indices: list[int]) -> list[SpeculationResult]:
    execute = _FORK_CONTEXT["execute"]
    base = _FORK_CONTEXT["base"]
    txs = _FORK_CONTEXT["txs"]
    return [_speculate_one(execute, base, txs[i], i) for i in indices]


def speculate_parallel(
    execute: ExecuteFn,
    base: WorldState,
    txs: Sequence[Transaction],
    workers: int,
    stats: Optional[ExecutionStats] = None,
) -> list[SpeculationResult]:
    """Speculate over a fork-based process pool; inline on any failure.

    The fallback is byte-safe: inline speculation computes exactly what
    the pool would have (speculations are independent and deterministic).
    """
    if workers <= 0 or len(txs) < 2:
        return speculate_inline(execute, base, txs)
    chunk_count = min(workers, len(txs))
    step = (len(txs) + chunk_count - 1) // chunk_count
    chunks = [list(range(lo, min(lo + step, len(txs)))) for lo in range(0, len(txs), step)]
    _FORK_CONTEXT["execute"] = execute
    _FORK_CONTEXT["base"] = base
    _FORK_CONTEXT["txs"] = list(txs)
    try:
        try:
            context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(max_workers=chunk_count, mp_context=context) as pool:
                gathered = list(pool.map(_speculate_chunk, chunks))
        except (OSError, ValueError, BrokenProcessPool):  # pragma: no cover - host-dependent
            if stats is not None:
                stats.pool_fallbacks += 1
            return speculate_inline(execute, base, txs)
    finally:
        _FORK_CONTEXT.clear()
    if stats is not None:
        stats.pool_rounds += 1
    results = [result for chunk in gathered for result in chunk]
    results.sort(key=lambda result: result.index)
    return results


def _touches_miner(result: SpeculationResult, miner: Address) -> bool:
    """Fee credits make the miner balance order-dependent; any read or
    write of it (including ``sender == miner``) forfeits the fast path."""
    key = ("b", miner)
    return key in result.reads or key in result.writes


def _conflicts(
    result: SpeculationResult,
    written: set[tuple],
    storage_written_accounts: set[Address],
) -> bool:
    """True iff the speculation observed (or overwrites) anything an
    earlier transaction of the block wrote."""
    for key in result.reads:
        if key[0] == "k":
            if key[1] in storage_written_accounts:
                return True
        elif key in written:
            return True
    return any(key in written for key in result.writes)


def _absorb_writes(
    keys: Sequence[tuple],
    written: set[tuple],
    storage_written_accounts: set[Address],
) -> None:
    for key in keys:
        written.add(key)
        if key[0] == "s":
            storage_written_accounts.add(key[1])


def execute_block_transactions(
    execute: ExecuteFn,
    state: WorldState,
    txs: Sequence[Transaction],
    miner: Address,
    workers: int = 0,
    stats: Optional[ExecutionStats] = None,
) -> list[Receipt]:
    """Execute a block's transactions via speculate/merge.

    Mutates ``state`` to the exact post-transaction state serial
    execution would produce (coinbase reward excluded — the caller pays
    it, as in the serial path) and returns the per-transaction receipts
    in block order.
    """
    specs = speculate_parallel(execute, state, txs, workers, stats=stats)
    if stats is not None:
        stats.speculated_txs += len(specs)
    receipts: list[Receipt] = []
    written: set[tuple] = set()
    storage_written_accounts: set[Address] = set()
    for tx, spec in zip(txs, specs):
        clean = (
            spec.ok
            and not _touches_miner(spec, miner)
            and not _conflicts(spec, written, storage_written_accounts)
        )
        if clean:
            _apply_diff(state, spec.diff)
            state.credit(miner, spec.receipt.gas_used * tx.gas_price)
            _absorb_writes(sorted(spec.writes), written, storage_written_accounts)
            receipt = spec.receipt
            if stats is not None:
                stats.clean_txs += 1
        else:
            mark = state.checkpoint()
            receipt = execute(state, tx, True)
            _absorb_writes(
                [
                    key
                    for record in state.journal_records_since(mark)
                    for key in _record_keys(record)
                ],
                written,
                storage_written_accounts,
            )
            state.commit(mark)
            if stats is not None:
                stats.dirty_txs += 1
                if not spec.ok:
                    stats.failed_speculations += 1
        receipts.append(receipt)
    return receipts


def _record_keys(record: tuple) -> list[tuple]:
    keys: set[tuple] = set()
    _record_write_key(record, keys)
    return list(keys)
