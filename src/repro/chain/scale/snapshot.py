"""Root-verified world-state checkpoints.

A snapshot is the canonical-serializable export of the full world state
at one canonical block, keyed ``snapshot:<block_hash>`` in the cold
store.  Everything a consumer needs to trust it is inside the header it
already validated: :func:`install_snapshot` rebuilds the state and
recomputes its root, refusing any payload whose root does not match the
block's committed ``state_root``.  That makes snapshots safe to accept
from untrusted peers — a rejoining node replays ``checkpoint + tail``
instead of the whole chain (:meth:`repro.chain.node.Node.sync_from`),
and a deep reorg past the journal horizon restarts replay from the
nearest checkpoint instead of genesis.
"""

from __future__ import annotations

from typing import Optional

from repro.chain.block import Block
from repro.chain.state import WorldState
from repro.errors import ChainError

#: Payload schema version (bump on incompatible layout changes).
SNAPSHOT_VERSION = 1


class SnapshotError(ChainError):
    """Malformed snapshot payload or state-root mismatch."""


def snapshot_key(block_hash: str) -> str:
    """Cold-store key for the snapshot taken at ``block_hash``."""
    return f"snapshot:{block_hash}"


def encode_snapshot(state: WorldState, block: Block) -> dict:
    """Snapshot of ``state`` as of (just after executing) ``block``.

    The caller is responsible for the pairing — ``state`` must be the
    post-execution state whose root the block header commits to; the
    encoder pins that claim into the payload so installers can check it.
    """
    return {
        "version": SNAPSHOT_VERSION,
        "block_hash": block.block_hash,
        "number": block.number,
        "state_root": block.header.state_root,
        "accounts": state.export_account_dicts(),
    }


def install_snapshot(payload: dict, expected_state_root: Optional[str] = None) -> WorldState:
    """Rebuild and root-verify the world state a snapshot carries.

    ``expected_state_root`` is the trusted root from the locally
    validated block header; when given, the payload's own claim must
    match it and the rebuilt state must hash to it.  Raises
    :class:`SnapshotError` on any mismatch — a tampered or corrupt
    snapshot never becomes live state.
    """
    if payload.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(f"unsupported snapshot version {payload.get('version')!r}")
    claimed_root = payload.get("state_root")
    if expected_state_root is not None and claimed_root != expected_state_root:
        raise SnapshotError(
            f"snapshot claims root {claimed_root} but block {payload.get('block_hash')} "
            f"commits to {expected_state_root}"
        )
    state = WorldState.from_account_dicts(payload.get("accounts", {}))
    actual_root = state.state_root()
    if actual_root != claimed_root:
        raise SnapshotError(
            f"snapshot for block {payload.get('block_hash')} rebuilds to root "
            f"{actual_root}, expected {claimed_root}"
        )
    return state
