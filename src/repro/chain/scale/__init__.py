"""Chain scale-out: parallel execution, cold storage, and snapshots.

Three pillars for thousand-peer, long-horizon runs, each independent and
each byte-neutral with respect to consensus:

* :mod:`repro.chain.scale.executor` — deterministic speculate/merge
  scheduler that executes a block's conflict-free transactions in
  parallel while producing block hashes, receipts, and state roots
  byte-identical to the serial order at any worker count;
* :mod:`repro.chain.scale.coldstore` — append-only content-addressed
  segment file for cold blocks, receipts, and snapshots, so a node's
  resident set is O(hot window) instead of O(chain length);
* :mod:`repro.chain.scale.snapshot` — root-verified world-state
  checkpoints plus the checkpoint+tail sync payloads a rejoining peer
  replays instead of the whole chain.

This package is the library's only sanctioned file-I/O surface (the
``io-discipline`` lint rule enforces that), and it must never import
:mod:`repro.chain.node` — the node injects its execution callable into
the executor, keeping the dependency one-directional.
"""

from repro.chain.scale.coldstore import ColdStore, ColdStoreStats
from repro.chain.scale.executor import (
    ExecutionStats,
    SpeculationResult,
    execute_block_transactions,
    speculate_inline,
    speculate_parallel,
)
from repro.chain.scale.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    encode_snapshot,
    install_snapshot,
    snapshot_key,
)

__all__ = [
    "ColdStore",
    "ColdStoreStats",
    "ExecutionStats",
    "SpeculationResult",
    "execute_block_transactions",
    "speculate_inline",
    "speculate_parallel",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "encode_snapshot",
    "install_snapshot",
    "snapshot_key",
]
