"""Binary Merkle tree over transaction hashes.

Block headers commit to their transaction list through a Merkle root, and
light verification of "transaction T is in block B" uses Merkle proofs —
this is the non-repudiation backbone the paper relies on: once a model
submission is under a mined root, its author cannot deny it.
"""

from __future__ import annotations

from typing import Sequence

from repro.utils.hashing import hash_concat, sha256_bytes

#: Root of an empty tree (hash of a domain-separation constant).
EMPTY_ROOT = sha256_bytes(b"repro-merkle-empty")

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _leaf_hash(data: bytes) -> bytes:
    return sha256_bytes(_LEAF_PREFIX + data)


def _node_hash(left: bytes, right: bytes) -> bytes:
    return hash_concat(_NODE_PREFIX, left, right)


def _build_levels(leaves: Sequence[bytes]) -> list[list[bytes]]:
    """Return all tree levels, bottom (hashed leaves) first."""
    level = [_leaf_hash(leaf) for leaf in leaves]
    levels = [level]
    while len(level) > 1:
        if len(level) % 2 == 1:
            # Duplicate the last node (Bitcoin-style padding); prefixing
            # leaf vs node hashes prevents second-preimage tricks.
            level = level + [level[-1]]
        level = [_node_hash(level[i], level[i + 1]) for i in range(0, len(level), 2)]
        levels.append(level)
    return levels


def merkle_root(leaves: Sequence[bytes]) -> bytes:
    """Root hash of ``leaves`` (raw byte strings, e.g. tx hashes)."""
    if not leaves:
        return EMPTY_ROOT
    return _build_levels(leaves)[-1][0]


def merkle_proof(leaves: Sequence[bytes], index: int) -> list[tuple[str, bytes]]:
    """Inclusion proof for ``leaves[index]``.

    Returns a list of ``(side, sibling_hash)`` pairs from leaf to root, where
    ``side`` is ``"L"`` if the sibling is on the left.
    """
    if not 0 <= index < len(leaves):
        raise IndexError(f"leaf index {index} out of range for {len(leaves)} leaves")
    levels = _build_levels(leaves)
    proof: list[tuple[str, bytes]] = []
    position = index
    for level in levels[:-1]:
        padded = level + [level[-1]] if len(level) % 2 == 1 else level
        if position % 2 == 0:
            proof.append(("R", padded[position + 1]))
        else:
            proof.append(("L", padded[position - 1]))
        position //= 2
    return proof


def verify_proof(leaf: bytes, proof: Sequence[tuple[str, bytes]], root: bytes) -> bool:
    """Check that ``leaf`` is under ``root`` given a :func:`merkle_proof`."""
    current = _leaf_hash(leaf)
    for side, sibling in proof:
        if side == "L":
            current = _node_hash(sibling, current)
        elif side == "R":
            current = _node_hash(current, sibling)
        else:
            return False
    return current == root
