"""Gas-metered smart-contract runtime.

The paper's aggregation coordination lives in a Solidity contract; here
contracts are Python classes registered by name.  A deployed contract gets
an address and a storage dict in the world state; method calls run inside a
:class:`CallContext` that meters gas for storage reads/writes and event
logs, and the executor rolls state back on revert or out-of-gas — the same
semantics Solidity gives.

Contracts must interact with state *only* through the context (``ctx.sload``
/ ``ctx.sstore`` / ``ctx.log`` / ``ctx.call``); this is what makes execution
deterministic and meterable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Type

from repro.chain.crypto import Address
from repro.chain.gas import GasMeter, GasSchedule, DEFAULT_SCHEDULE
from repro.chain.state import WorldState
from repro.chain.transaction import LogEntry, Transaction
from repro.errors import (
    ContractError,
    ContractNotFoundError,
    ContractRevertError,
    MethodNotFoundError,
    OutOfGasError,
)
from repro.utils.hashing import keccak_like
from repro.utils.serialization import canonical_dumps


@dataclass
class CallContext:
    """Execution context handed to a contract method.

    Exposes Solidity-style environment values (``sender``, ``value``,
    ``block_number``, ``timestamp``) plus metered state accessors.
    """

    state: WorldState
    meter: GasMeter
    contract_address: Address
    sender: Address
    value: int = 0
    block_number: int = 0
    timestamp: float = 0.0
    logs: list[LogEntry] = field(default_factory=list)
    runtime: Optional["ContractRuntime"] = None
    depth: int = 0

    # -- storage ---------------------------------------------------------
    #
    # All access goes through the WorldState storage API so every write is
    # journaled (transaction revert and block reorg roll back in O(touched))
    # and reads never materialize accounts.  Values read via sload must be
    # treated as immutable: store a replacement object through sstore.

    def sload(self, key: str, default: Any = None) -> Any:
        """Metered storage read."""
        self.meter.charge_sload()
        return self.state.storage_get(self.contract_address, key, default)

    def sstore(self, key: str, value: Any) -> None:
        """Metered storage write; charges by value size for large payloads."""
        encoded_size = len(canonical_dumps(value))
        fresh = not self.state.storage_has(self.contract_address, key)
        self.meter.charge_sstore(fresh=fresh, value_size=encoded_size)
        self.state.storage_set(self.contract_address, key, value)

    def sdelete(self, key: str) -> None:
        """Remove a storage slot (charged as an update)."""
        if self.state.storage_has(self.contract_address, key):
            self.meter.charge_sstore(fresh=False)
            self.state.storage_delete(self.contract_address, key)

    def skeys(self, prefix: str = "") -> list[str]:
        """Metered scan of storage keys with ``prefix``."""
        self.meter.charge_sload()
        return self.state.storage_keys(self.contract_address, prefix)

    # -- environment ------------------------------------------------------

    def log(self, topic: str, **payload: Any) -> None:
        """Emit an event (shows up in the receipt)."""
        size = len(canonical_dumps(payload))
        self.meter.charge_log(size)
        self.logs.append(LogEntry(address=self.contract_address, topic=topic, payload=payload))

    def require(self, condition: bool, reason: str = "requirement failed") -> None:
        """Solidity's ``require``: revert unless ``condition`` holds."""
        if not condition:
            raise ContractRevertError(reason)

    def revert(self, reason: str = "") -> None:
        """Unconditional revert."""
        raise ContractRevertError(reason)

    def call(self, target: Address, method: str, **args: Any) -> Any:
        """Metered contract-to-contract call sharing this context's meter."""
        if self.runtime is None:
            raise ContractError("context has no runtime for nested calls")
        if self.depth >= 16:
            raise ContractRevertError("max call depth exceeded")
        self.meter.charge(self.meter.schedule.call_base, "call")
        return self.runtime.internal_call(self, target, method, args)


class Contract:
    """Base class for contracts.

    Subclasses implement public methods taking ``(self, ctx, **args)``.
    Method names starting with ``_`` are not callable from transactions.
    A subclass may define ``init(ctx, **args)`` run once at deployment.
    """

    #: Registry name; subclasses override.
    NAME = "contract"

    def init(self, ctx: CallContext, **args: Any) -> None:
        """Constructor hook; default does nothing."""

    def public_methods(self) -> list[str]:
        """Callable method names (public API of the contract)."""
        return sorted(
            name
            for name in dir(self)
            if not name.startswith("_")
            and name not in {"init", "public_methods", "NAME"}
            and callable(getattr(self, name))
        )


class ContractRuntime:
    """Deploys and executes registered contract classes."""

    def __init__(self, schedule: GasSchedule = DEFAULT_SCHEDULE) -> None:
        self.schedule = schedule
        self._registry: dict[str, Type[Contract]] = {}

    # -- registry ---------------------------------------------------------

    def register(self, contract_class: Type[Contract]) -> None:
        """Register a contract class under its ``NAME``."""
        name = contract_class.NAME
        if not name or name == Contract.NAME:
            raise ContractError(f"{contract_class.__name__} must define a unique NAME")
        self._registry[name] = contract_class

    def is_registered(self, name: str) -> bool:
        """True if a contract class with ``name`` is known."""
        return name in self._registry

    def registered_names(self) -> list[str]:
        """Sorted registered contract names."""
        return sorted(self._registry)

    def _instantiate(self, name: str) -> Contract:
        try:
            return self._registry[name]()
        except KeyError:
            raise ContractNotFoundError(f"contract class {name!r} not registered") from None

    # -- deployment --------------------------------------------------------

    @staticmethod
    def contract_address(deployer: Address, nonce: int) -> Address:
        """Deterministic deployment address (Ethereum: H(sender, nonce))."""
        digest = keccak_like(canonical_dumps({"deployer": deployer, "nonce": nonce}))
        return "0x" + digest[-40:]

    def deploy(
        self,
        state: WorldState,
        meter: GasMeter,
        tx: Transaction,
        block_number: int,
        timestamp: float,
    ) -> tuple[Address, list[LogEntry]]:
        """Deploy the contract named in ``tx.args['contract']``.

        Returns the new contract address and constructor logs.  Raises
        :class:`ContractRevertError` / :class:`OutOfGasError` on failure
        (caller rolls back).
        """
        name = tx.args.get("contract")
        if not isinstance(name, str):
            raise ContractRevertError("deployment requires args['contract']")
        instance = self._instantiate(name)
        address = self.contract_address(tx.sender, tx.nonce)
        state.deploy(address, name)
        ctx = CallContext(
            state=state,
            meter=meter,
            contract_address=address,
            sender=tx.sender,
            value=tx.value,
            block_number=block_number,
            timestamp=timestamp,
            runtime=self,
        )
        init_args = {key: value for key, value in tx.args.items() if key != "contract"}
        instance.init(ctx, **init_args)
        return address, ctx.logs

    # -- calls --------------------------------------------------------------

    def _resolve_method(self, instance: Contract, method: str) -> Callable[..., Any]:
        if method.startswith("_") or method in {"init", "public_methods"}:
            raise MethodNotFoundError(f"method {method!r} is not public")
        fn = getattr(instance, method, None)
        if fn is None or not callable(fn):
            raise MethodNotFoundError(f"unknown method {method!r}")
        return fn

    def execute_call(
        self,
        state: WorldState,
        meter: GasMeter,
        tx: Transaction,
        block_number: int,
        timestamp: float,
    ) -> tuple[Any, list[LogEntry]]:
        """Run a top-level contract call transaction."""
        name = state.contract_name_of(tx.to)
        if name is None:
            raise ContractNotFoundError(f"no contract at {tx.to}")
        instance = self._instantiate(name)
        ctx = CallContext(
            state=state,
            meter=meter,
            contract_address=tx.to,
            sender=tx.sender,
            value=tx.value,
            block_number=block_number,
            timestamp=timestamp,
            runtime=self,
        )
        fn = self._resolve_method(instance, tx.method)
        result = fn(ctx, **tx.args)
        return result, ctx.logs

    def internal_call(self, parent: CallContext, target: Address, method: str, args: dict) -> Any:
        """Nested call: new context, shared meter, sender = calling contract."""
        name = parent.state.contract_name_of(target)
        if name is None:
            raise ContractNotFoundError(f"no contract at {target}")
        instance = self._instantiate(name)
        ctx = CallContext(
            state=parent.state,
            meter=parent.meter,
            contract_address=target,
            sender=parent.contract_address,
            value=0,
            block_number=parent.block_number,
            timestamp=parent.timestamp,
            runtime=self,
            depth=parent.depth + 1,
        )
        fn = self._resolve_method(instance, method)
        result = fn(ctx, **args)
        parent.logs.extend(ctx.logs)
        return result

    def read_only_call(
        self,
        state: WorldState,
        contract_address: Address,
        method: str,
        caller: Address = "0x" + "00" * 20,
        block_number: int = 0,
        timestamp: float = 0.0,
        gas_limit: int = 10**9,
        **args: Any,
    ) -> Any:
        """web3-style ``eth_call``: execute on a discarded copy-on-write
        overlay, so reads touch nothing and writes never reach ``state``."""
        scratch = state.overlay()
        meter = GasMeter(gas_limit, self.schedule)
        name = scratch.contract_name_of(contract_address)
        if name is None:
            raise ContractNotFoundError(f"no contract at {contract_address}")
        instance = self._instantiate(name)
        ctx = CallContext(
            state=scratch,
            meter=meter,
            contract_address=contract_address,
            sender=caller,
            block_number=block_number,
            timestamp=timestamp,
            runtime=self,
        )
        fn = self._resolve_method(instance, method)
        return fn(ctx, **args)
