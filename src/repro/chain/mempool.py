"""Pending-transaction pool.

Each node keeps a mempool of gossiped-but-unmined transactions.  Admission
enforces signatures, replay protection, and (optionally) balance coverage;
block building pops transactions ordered by gas price then nonce, mirroring
Geth's default miner policy.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.chain.crypto import Address
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.errors import MempoolError


class Mempool:
    """Bounded pool of pending transactions keyed by hash."""

    def __init__(self, max_size: int = 100_000) -> None:
        self.max_size = max_size
        self._by_hash: dict[str, Transaction] = {}

    def __len__(self) -> int:
        return len(self._by_hash)

    def __contains__(self, tx_hash: str) -> bool:
        return tx_hash in self._by_hash

    def pending(self) -> list[Transaction]:
        """All pending transactions (unordered)."""
        return list(self._by_hash.values())

    def add(self, tx: Transaction, state: Optional[WorldState] = None) -> bool:
        """Admit ``tx``; returns ``False`` for benign duplicates.

        Raises :class:`MempoolError` for invalid transactions (bad signature,
        stale nonce, unaffordable cost, pool full).  ``state`` enables the
        stateful checks; without it only the signature is checked.
        """
        tx_hash = tx.tx_hash
        if tx_hash in self._by_hash:
            return False
        if len(self._by_hash) >= self.max_size:
            raise MempoolError(f"mempool full ({self.max_size})")
        if not tx.verify_signature():
            raise MempoolError(f"rejecting unsigned/forged tx {tx_hash[:10]}")
        if state is not None:
            account_nonce = state.nonce_of(tx.sender)
            if tx.nonce < account_nonce:
                raise MempoolError(
                    f"stale nonce {tx.nonce} < account nonce {account_nonce} for {tx.sender}"
                )
            if state.balance_of(tx.sender) < tx.max_cost():
                raise MempoolError(
                    f"{tx.sender} cannot cover max cost {tx.max_cost()}"
                )
        self._by_hash[tx_hash] = tx
        return True

    def remove(self, tx_hashes: Iterable[str]) -> int:
        """Drop mined/invalidated transactions; returns how many were present."""
        removed = 0
        for tx_hash in tx_hashes:
            if self._by_hash.pop(tx_hash, None) is not None:
                removed += 1
        return removed

    def select(self, state: WorldState, max_count: Optional[int] = None, max_gas: Optional[int] = None) -> list[Transaction]:
        """Choose transactions for a block candidate.

        Ordering: gas price descending, then per-sender nonce ascending.
        Transactions whose nonce is not currently executable (gap) are
        skipped but kept in the pool.
        """
        per_sender: dict[Address, list[Transaction]] = {}
        for tx in self._by_hash.values():
            per_sender.setdefault(tx.sender, []).append(tx)
        for txs in per_sender.values():
            txs.sort(key=lambda tx: tx.nonce)

        chosen: list[Transaction] = []
        gas_budget = max_gas if max_gas is not None else float("inf")
        next_nonce = {sender: state.nonce_of(sender) for sender in per_sender}
        # Repeatedly take the best-priced executable transaction.
        while True:
            if max_count is not None and len(chosen) >= max_count:
                break
            candidates = []
            for sender, txs in per_sender.items():
                if txs and txs[0].nonce == next_nonce[sender]:
                    candidates.append(txs[0])
            if not candidates:
                break
            candidates.sort(key=lambda tx: (-tx.gas_price, tx.sender, tx.nonce))
            best = None
            for tx in candidates:
                if tx.gas_limit <= gas_budget:
                    best = tx
                    break
            if best is None:
                break
            per_sender[best.sender].pop(0)
            next_nonce[best.sender] += 1
            gas_budget -= best.gas_limit
            chosen.append(best)
        return chosen

    def drop_stale(self, state: WorldState) -> int:
        """Purge transactions whose nonce is already consumed on-chain."""
        stale = [
            tx_hash
            for tx_hash, tx in self._by_hash.items()
            if tx.nonce < state.nonce_of(tx.sender)
        ]
        return self.remove(stale)
