"""Pending-transaction pool.

Each node keeps a mempool of gossiped-but-unmined transactions.  Admission
enforces signatures, replay protection, and (optionally) balance coverage;
block building pops transactions ordered by gas price then nonce, mirroring
Geth's default miner policy.

The pool maintains persistent per-sender queues sorted by nonce (stable for
equal nonces), so :meth:`select` does not rebuild sender indexes per block:
it seeds a gas-price heap with each sender's executable head transaction
and pops/advances in O(chosen · log senders).  :meth:`Mempool.pending_count`
answers per-sender pending counts in O(1), which is what wallets need for
``next_nonce_for`` instead of scanning the whole pool.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from typing import Iterable, Optional

from repro.chain.crypto import Address
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.errors import MempoolError


class Mempool:
    """Bounded pool of pending transactions keyed by hash."""

    def __init__(self, max_size: int = 100_000) -> None:
        self.max_size = max_size
        self._by_hash: dict[str, Transaction] = {}
        # Per-sender queue sorted by nonce; arrival order breaks nonce ties
        # (the first-seen transaction wins selection, as before).  The
        # parallel nonce list keeps insertion/removal at O(log n) search.
        self._by_sender: dict[Address, list[Transaction]] = {}
        self._sender_nonces: dict[Address, list[int]] = {}

    def __len__(self) -> int:
        return len(self._by_hash)

    def __contains__(self, tx_hash: str) -> bool:
        return tx_hash in self._by_hash

    def pending(self) -> list[Transaction]:
        """All pending transactions (unordered)."""
        return list(self._by_hash.values())

    def pending_count(self, sender: Address) -> int:
        """How many pending transactions ``sender`` has (O(1))."""
        return len(self._by_sender.get(sender, ()))

    def add(self, tx: Transaction, state: Optional[WorldState] = None) -> bool:
        """Admit ``tx``; returns ``False`` for benign duplicates.

        Raises :class:`MempoolError` for invalid transactions (bad signature,
        stale nonce, unaffordable cost, pool full).  ``state`` enables the
        stateful checks; without it only the signature is checked.
        """
        tx_hash = tx.tx_hash
        if tx_hash in self._by_hash:
            return False
        if len(self._by_hash) >= self.max_size:
            raise MempoolError(f"mempool full ({self.max_size})")
        if not tx.verify_signature():
            raise MempoolError(f"rejecting unsigned/forged tx {tx_hash[:10]}")
        if state is not None:
            account_nonce = state.nonce_of(tx.sender)
            if tx.nonce < account_nonce:
                raise MempoolError(
                    f"stale nonce {tx.nonce} < account nonce {account_nonce} for {tx.sender}"
                )
            if state.balance_of(tx.sender) < tx.max_cost():
                raise MempoolError(
                    f"{tx.sender} cannot cover max cost {tx.max_cost()}"
                )
        self._by_hash[tx_hash] = tx
        queue = self._by_sender.setdefault(tx.sender, [])
        nonces = self._sender_nonces.setdefault(tx.sender, [])
        position = bisect_right(nonces, tx.nonce)
        nonces.insert(position, tx.nonce)
        queue.insert(position, tx)
        return True

    def _unindex(self, tx: Transaction) -> None:
        """Drop ``tx`` from its sender queue (``_by_hash`` already popped)."""
        queue = self._by_sender.get(tx.sender)
        if not queue:
            return
        nonces = self._sender_nonces[tx.sender]
        index = bisect_left(nonces, tx.nonce)
        while index < len(queue) and queue[index].nonce == tx.nonce:
            if queue[index].tx_hash == tx.tx_hash:
                del queue[index]
                del nonces[index]
                break
            index += 1
        if not queue:
            del self._by_sender[tx.sender]
            del self._sender_nonces[tx.sender]

    def remove(self, tx_hashes: Iterable[str]) -> int:
        """Drop mined/invalidated transactions; returns how many were present."""
        removed = 0
        for tx_hash in tx_hashes:
            tx = self._by_hash.pop(tx_hash, None)
            if tx is not None:
                self._unindex(tx)
                removed += 1
        return removed

    def select(self, state: WorldState, max_count: Optional[int] = None, max_gas: Optional[int] = None) -> list[Transaction]:
        """Choose transactions for a block candidate.

        Ordering: gas price descending, then per-sender nonce ascending.
        Transactions whose nonce is not currently executable (gap, or a
        stale/duplicate transaction at the queue head) are skipped but kept
        in the pool.  A sender whose head transaction exceeds the remaining
        gas budget is blocked for the rest of the selection (the budget
        only shrinks), matching the previous scan-based policy.
        """
        chosen: list[Transaction] = []
        gas_budget = max_gas if max_gas is not None else float("inf")
        # One heap entry per sender: their currently executable head tx.
        heap: list[tuple[int, Address, int]] = []
        position: dict[Address, int] = {}
        for sender, queue in self._by_sender.items():
            head = queue[0]
            if head.nonce == state.nonce_of(sender):
                heap.append((-head.gas_price, sender, head.nonce))
                position[sender] = 0
        heapq.heapify(heap)
        while heap:
            if max_count is not None and len(chosen) >= max_count:
                break
            _neg_price, sender, nonce = heapq.heappop(heap)
            queue = self._by_sender[sender]
            index = position[sender]
            tx = queue[index]
            if tx.gas_limit > gas_budget:
                continue  # blocked for this block; stays pending
            chosen.append(tx)
            gas_budget -= tx.gas_limit
            index += 1
            position[sender] = index
            if index < len(queue) and queue[index].nonce == nonce + 1:
                successor = queue[index]
                heapq.heappush(heap, (-successor.gas_price, sender, successor.nonce))
        return chosen

    def drop_stale(self, state: WorldState) -> int:
        """Purge transactions whose nonce is already consumed on-chain.

        Stale transactions form a prefix of each nonce-sorted sender queue,
        so the scan is proportional to senders plus removals.
        """
        stale = []
        for sender, queue in self._by_sender.items():
            account_nonce = state.nonce_of(sender)
            for tx in queue:
                if tx.nonce >= account_nonce:
                    break
                stale.append(tx.tx_hash)
        return self.remove(stale)
