"""Developer tooling that ships with the library but never runs in-band.

Currently one subsystem: :mod:`repro.devtools.lint`, the AST-based
invariant linter that machine-checks the repo's determinism, seam, and
journal contracts on every push.
"""
