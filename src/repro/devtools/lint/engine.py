"""Rule engine: one parse per file, pragma suppression, content-hash cache.

The engine is deliberately small: a :class:`LintRule` walks a pre-parsed
``ast`` tree and yields :class:`Finding` objects; the engine owns file
traversal, the single parse, inline ``# repro-lint: disable=<rule>``
pragmas, and a per-file content-hash cache so repeated runs (and
overlapping path arguments) never re-parse or re-check an unchanged file.

Rules see repo-root-relative POSIX paths (``src/repro/chain/node.py``),
which is what their ``applies_to`` scoping predicates are written against.
"""

from __future__ import annotations

import ast
import hashlib
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

PRAGMA = "repro-lint:"

SKIP_DIR_NAMES = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, pinned to ``path:line``."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching.

        Deliberately excludes the line number so a grandfathered finding
        survives unrelated edits above it; a baseline entry is spent once
        per matching (path, rule, message) occurrence.
        """
        return (self.path, self.rule, self.message)

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


class LintContext:
    """Everything a rule may need for one file."""

    def __init__(self, path: str, source: str, tree: ast.AST) -> None:
        self.path = path
        self.source = source
        self.tree = tree


class LintRule:
    """Base class: subclasses set the id/category/rationale and ``check``.

    ``rationale`` names the historical bug class the rule was distilled
    from; it surfaces in ``--list-rules`` and the README catalog.
    """

    rule_id: str = ""
    category: str = ""
    description: str = ""
    rationale: str = ""

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on the repo-relative POSIX ``path``."""
        return True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST | int, message: str) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(path=ctx.path, line=line, rule=self.rule_id, message=message)


@dataclass
class EngineStats:
    """Observability for the cache contract (asserted by tier-1 tests)."""

    files: int = 0
    parses: int = 0
    cache_hits: int = 0


def _suppressions(source: str) -> dict[int, set[str]]:
    """Map line -> rule ids disabled by an inline pragma on that line.

    Pragmas must be comments (``# repro-lint: disable=seam`` or
    ``disable=all``); pragma-looking text inside string literals does not
    suppress anything.
    """
    out: dict[int, set[str]] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string.lstrip("#").strip()
            if not text.startswith(PRAGMA):
                continue
            directive = text[len(PRAGMA):].strip()
            if directive.startswith("disable="):
                rules = {
                    r.strip()
                    for r in directive[len("disable="):].split(",")
                    if r.strip()
                }
                if rules:
                    out.setdefault(tok.start[0], set()).update(rules)
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        pass  # unparsable files already yield a parse-error finding
    return out


class LintEngine:
    """Run a rule set over sources, files, or directory trees."""

    def __init__(
        self,
        rules: Optional[Sequence[LintRule]] = None,
        root: Optional[Path] = None,
    ) -> None:
        if rules is None:
            from repro.devtools.lint.rules import default_rules

            rules = default_rules()
        self.rules: list[LintRule] = list(rules)
        self.root = (root or Path.cwd()).resolve()
        self.stats = EngineStats()
        # relpath -> (content hash, findings); keyed on content so edits
        # invalidate and identical re-runs are pure dictionary lookups.
        self._cache: dict[str, tuple[str, tuple[Finding, ...]]] = {}

    # ------------------------------------------------------------------
    # Core
    # ------------------------------------------------------------------

    def lint_source(self, source: str, path: str) -> list[Finding]:
        """Lint a source string as if it lived at repo-relative ``path``."""
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    rule="parse-error",
                    message=f"file does not parse: {exc.msg}",
                )
            ]
        ctx = LintContext(path, source, tree)
        raw: list[Finding] = []
        for rule in self.rules:
            if rule.applies_to(path):
                raw.extend(rule.check(ctx))
        if not raw:
            return []
        disabled = _suppressions(source)
        findings = [
            f
            for f in raw
            if not ({f.rule, "all"} & disabled.get(f.line, set()))
        ]
        return sorted(findings)

    def lint_file(self, file_path: Path) -> list[Finding]:
        relpath = self._relpath(file_path)
        source = file_path.read_text(encoding="utf-8")
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        cached = self._cache.get(relpath)
        if cached is not None and cached[0] == digest:
            self.stats.cache_hits += 1
            return list(cached[1])
        self.stats.parses += 1
        findings = self.lint_source(source, relpath)
        self._cache[relpath] = (digest, tuple(findings))
        return findings

    def lint_paths(self, paths: Iterable[Path | str]) -> list[Finding]:
        """Lint files and directory trees; duplicates are checked once."""
        findings: list[Finding] = []
        seen: set[Path] = set()
        for file_path in self._collect(paths):
            resolved = file_path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            self.stats.files += 1
            findings.extend(self.lint_file(file_path))
        return sorted(findings)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _relpath(self, file_path: Path) -> str:
        resolved = file_path.resolve()
        try:
            return resolved.relative_to(self.root).as_posix()
        except ValueError:
            return resolved.as_posix()

    def _collect(self, paths: Iterable[Path | str]) -> Iterator[Path]:
        for path in paths:
            path = Path(path)
            if path.is_dir():
                yield from sorted(
                    p
                    for p in path.rglob("*.py")
                    if not (SKIP_DIR_NAMES & {part for part in p.parts})
                )
            elif path.suffix == ".py":
                yield path
