"""Command line interface: ``python -m repro.devtools.lint [paths]``.

Exit codes
----------
* ``0`` — no non-baselined findings (stale baseline entries are reported
  but do not fail the run; fix them by regenerating the baseline).
* ``1`` — at least one finding not covered by the baseline.
* ``2`` — usage error: unknown rule id, missing path, unreadable baseline.

Output formats
--------------
* ``text`` (default) — one ``path:line: [rule] message`` line per finding.
* ``json`` — a single object: ``{"version": 1, "files": N, "findings":
  [{path, line, rule, message}], "baselined": N, "stale_baseline": [...]}``.
* ``--annotate`` — additionally emit GitHub Actions ``::error`` workflow
  commands for every non-baselined finding (composable with any format).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.devtools.lint.baseline import Baseline
from repro.devtools.lint.engine import Finding, LintEngine
from repro.devtools.lint.rules import default_rules, rules_by_id

JSON_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="AST-based invariant linter for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="JSON baseline of grandfathered findings",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite --baseline FILE from the current findings and exit 0",
    )
    parser.add_argument(
        "--annotate",
        action="store_true",
        help="also emit GitHub Actions ::error annotations",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="ID[,ID...]",
        help="run only the named rules",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repo root used to relativize paths (default: cwd)",
    )
    return parser


def _select_rules(spec: Optional[str]):
    if spec is None:
        return default_rules()
    catalog = rules_by_id()
    selected = []
    for rule_id in [part.strip() for part in spec.split(",") if part.strip()]:
        if rule_id not in catalog:
            raise KeyError(rule_id)
        selected.append(catalog[rule_id]())
    return selected


def _print_catalog(out) -> None:
    for rule in default_rules():
        print(f"{rule.rule_id} [{rule.category}]", file=out)
        print(f"  enforces : {rule.description}", file=out)
        print(f"  history  : {rule.rationale}", file=out)


def _annotate(findings: Sequence[Finding], out) -> None:
    for f in findings:
        print(
            f"::error file={f.path},line={f.line},"
            f"title=repro-lint {f.rule}::{f.message}",
            file=out,
        )


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_catalog(out)
        return 0

    try:
        rules = _select_rules(args.rules)
    except KeyError as exc:
        known = ", ".join(sorted(rules_by_id()))
        print(f"error: unknown rule {exc.args[0]!r} (known: {known})", file=out)
        return 2

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=out)
        return 2

    if args.write_baseline and args.baseline is None:
        print("error: --write-baseline requires --baseline FILE", file=out)
        return 2

    engine = LintEngine(rules=rules, root=args.root)
    findings = engine.lint_paths(args.paths)

    if args.write_baseline:
        Baseline.write(args.baseline, findings)
        print(
            f"wrote {len(findings)} finding(s) to baseline {args.baseline}",
            file=out,
        )
        return 0

    if args.baseline is not None:
        try:
            baseline = Baseline.load(args.baseline)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"error: unreadable baseline {args.baseline}: {exc}", file=out)
            return 2
    else:
        baseline = Baseline()
    result = baseline.partition(findings)

    if args.format == "json":
        payload = {
            "version": JSON_VERSION,
            "files": engine.stats.files,
            "findings": [f.as_dict() for f in result.new],
            "baselined": len(result.suppressed),
            "stale_baseline": result.stale,
        }
        print(json.dumps(payload, indent=2), file=out)
    else:
        for finding in result.new:
            print(finding.render(), file=out)
        summary = (
            f"{engine.stats.files} file(s): {len(result.new)} finding(s)"
        )
        if result.suppressed:
            summary += f", {len(result.suppressed)} baselined"
        if result.stale:
            summary += (
                f", {len(result.stale)} stale baseline entr"
                f"{'y' if len(result.stale) == 1 else 'ies'} "
                "(fixed or moved — regenerate with --write-baseline)"
            )
        print(summary, file=out)

    if args.annotate:
        _annotate(result.new, out)

    return 1 if result.new else 0
