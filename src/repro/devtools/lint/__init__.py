"""AST-based invariant linter: the repo's contracts as machine checks.

Every rule here is distilled from a bug this repo actually had (or an
invariant its equivalence suites depend on).  Unit tests patrol values;
these rules patrol *shapes* that no single test exercises — and they run
over the whole tree on every push (``lint`` job in CI, tier-1 test
``tests/test_devtools_lint.py``).

Rule catalog
------------

``seam`` (architecture)
    No ``.node`` attribute access and no ``repro.chain.node`` imports
    outside ``repro/chain/`` — the FL layer programs against the
    :class:`~repro.chain.gateway.ChainGateway` protocol (PR 5).  Replaces
    the tokenizer scan that lived in ``tests/test_chain_gateway.py`` and
    additionally catches aliased imports (``from repro.chain import node
    as n``).  Scope: ``src/repro/`` (minus ``chain/``) and ``examples/``.

``global-rng`` (determinism)
    No stdlib ``random.*`` calls, no legacy module-level ``np.random.*``
    calls, no unseeded ``np.random.default_rng()`` — stochastic code
    draws from named streams (:mod:`repro.utils.rng`).  Scope: ``src/``.

``wall-clock`` (determinism)
    No host-clock reads (``time.time()``, ``time.perf_counter()``,
    ``datetime.now()``, …) outside the sanctioned instrumentation set
    (``metrics/timing.py``, ``scenarios/sweep.py``, ``chain/gateway.py``,
    ``runtime/gateway.py``).
    Results are a pure function of the seed; the simulator owns time.
    Scope: ``src/``.

``journal-discipline`` (chain-state)
    Flow-sensitive: every ``mark = <state>.checkpoint()`` must reach a
    ``commit()``/``rollback()``/mark-store (or explicit journal disposal)
    on *all* paths, including through ``try``/``finally`` (PR 2's
    undo-log journal).  Scope: ``src/repro/chain/``.

``config-mutation`` (immutability)
    No attribute assignment on config-dataclass parameters
    (``ExperimentConfig``, ``DecentralizedConfig``, ``ChainSpec``, …) —
    copy with ``dataclasses.replace`` (the PR-3 ``chain_config`` mutation
    bug).  Scope: ``src/``.

``suspicious-comparison`` (correctness)
    No chained comparisons mixing membership/identity with other operator
    categories — the PR-1 ``"weights" in decoded is None`` always-False
    bug class.  Scope: everywhere.

``retry-discipline`` (robustness)
    No bare ``except:`` and no swallowed ``except Exception: pass``
    around gateway calls — gateway failures carry typed retry/degrade
    semantics (:mod:`repro.faults`, PR 7) and must be caught by name.
    Scope: ``src/repro/``.

``wire-discipline`` (seam)
    ``socket``/``selectors``/``struct``/``subprocess`` imports only under
    ``repro/runtime/`` — the out-of-process runtime is the library's one
    OS-transport surface — and ``pickle`` nowhere in ``src/`` (the wire
    codec is canonical JSON + raw blobs).  Scope: ``src/``.

``io-discipline`` (seam)
    ``tempfile``/``shutil`` imports and builtin ``open()`` calls only
    under ``repro/chain/scale/`` — the cold store (PR 10) is the
    library's one file-I/O surface; ``os``/``pathlib``/``io`` also
    tolerated under ``repro/runtime/`` for process plumbing.  Scope:
    ``src/`` minus ``repro/devtools/`` (the linter reads files).

Suppressing a finding
---------------------

Append ``# repro-lint: disable=<rule>`` (or ``disable=all``) to the
offending line; the pragma must be a comment on the exact line the
finding points at.  Grandfathered findings can instead live in a JSON
baseline (``--baseline FILE``, regenerate with ``--write-baseline``);
the shipped ``lint-baseline.json`` is empty and should stay that way.

Running it
----------

``python -m repro.devtools.lint src tests benchmarks examples`` — see
:mod:`repro.devtools.lint.cli` for formats, exit codes, and GitHub
annotation output, and :mod:`repro.devtools.lint.rules` for how to add a
rule.
"""

from repro.devtools.lint.baseline import Baseline, BaselineResult
from repro.devtools.lint.cli import main
from repro.devtools.lint.engine import (
    Finding,
    LintContext,
    LintEngine,
    LintRule,
)
from repro.devtools.lint.rules import ALL_RULES, default_rules, rules_by_id

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineResult",
    "Finding",
    "LintContext",
    "LintEngine",
    "LintRule",
    "default_rules",
    "main",
    "rules_by_id",
]
