"""Entry point for ``python -m repro.devtools.lint``."""

from repro.devtools.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
