"""Checked-in baseline for grandfathered findings.

A baseline is a JSON list of finding records.  Matching is by
``(path, rule, message)`` — line numbers are recorded for humans but
ignored for matching, so a grandfathered finding survives unrelated edits
above it.  Each entry is spent once per matching occurrence: duplicating
a violation that was baselined once still fails the build.

Entries that no longer match anything are *stale* — the violation was
fixed (or the file moved) — and are reported so the baseline shrinks
toward empty instead of fossilizing.  ``--write-baseline`` regenerates
the file from the current findings.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.lint.engine import Finding


@dataclass
class BaselineResult:
    new: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    stale: list[dict] = field(default_factory=list)


class Baseline:
    def __init__(self, entries: list[dict] | None = None) -> None:
        self.entries = list(entries or [])
        for entry in self.entries:
            missing = {"path", "rule", "message"} - set(entry)
            if missing:
                raise ValueError(
                    f"baseline entry {entry!r} missing keys {sorted(missing)}"
                )

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls([])
        payload = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(payload, list):
            raise ValueError(f"baseline {path} must be a JSON list")
        return cls(payload)

    @staticmethod
    def write(path: Path, findings: list[Finding]) -> None:
        payload = [f.as_dict() for f in sorted(findings)]
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def partition(self, findings: list[Finding]) -> BaselineResult:
        budget = Counter(
            (e["path"], e["rule"], e["message"]) for e in self.entries
        )
        result = BaselineResult()
        for finding in findings:
            key = finding.baseline_key()
            if budget[key] > 0:
                budget[key] -= 1
                result.suppressed.append(finding)
            else:
                result.new.append(finding)
        # Leftover budget means the entry matched nothing: each leftover
        # unit is exactly one stale entry.
        for entry in self.entries:
            key = (entry["path"], entry["rule"], entry["message"])
            if budget[key] > 0:
                budget[key] -= 1
                result.stale.append(entry)
        return result
