"""Shared AST helpers for the rule modules."""

from __future__ import annotations

import ast
from typing import Optional


def dotted_chain(node: ast.AST) -> Optional[list[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for non-name-rooted chains.

    Only pure ``Name``/``Attribute`` chains resolve; anything rooted at a
    call, subscript, or literal returns None.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


class ImportMap:
    """Where each local name comes from, AST-accurately.

    Tracks two binding shapes across the whole file (module and function
    scope alike — a function-local ``import`` binds the same hazards):

    * ``module_aliases``: local name -> dotted module it denotes
      (``import numpy.random as nr`` binds ``nr`` -> ``numpy.random``;
      ``import numpy.random`` binds ``numpy`` -> ``numpy``).
    * ``from_imports``: local name -> ``module.attr`` it was imported as
      (``from random import randint as ri`` binds ``ri`` ->
      ``random.randint``).
    """

    def __init__(self, tree: ast.AST) -> None:
        self.module_aliases: dict[str, str] = {}
        self.from_imports: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.module_aliases[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".", 1)[0]
                        self.module_aliases[top] = top
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.from_imports[local] = f"{node.module}.{alias.name}"

    def resolve_call_target(self, func: ast.AST) -> Optional[str]:
        """Fully-qualified dotted target of a call expression, if knowable.

        ``np.random.rand`` (under ``import numpy as np``) resolves to
        ``numpy.random.rand``; a bare ``ri`` imported from ``random``
        resolves to ``random.randint``.  Attribute chains rooted at
        anything other than an imported module name return None — method
        calls on objects never alias a module function.
        """
        chain = dotted_chain(func)
        if chain is None:
            return None
        base = chain[0]
        if len(chain) == 1:
            return self.from_imports.get(base)
        module = self.module_aliases.get(base)
        if module is not None:
            return ".".join([module, *chain[1:]])
        origin = self.from_imports.get(base)
        if origin is not None:
            return ".".join([origin, *chain[1:]])
        return None


def resolve_import_from(node: ast.ImportFrom, path: str) -> Optional[str]:
    """Absolute module named by a ``from ... import`` statement.

    Relative imports resolve against the file's package path, derived
    from its repo-relative location under ``src/`` (the only tree where
    the library's own relative imports can occur).
    """
    if node.level == 0:
        return node.module
    if not path.startswith("src/"):
        return node.module
    package_parts = path[len("src/"):].split("/")[:-1]  # drop filename
    if len(package_parts) < node.level - 1:
        return node.module
    base = package_parts[: len(package_parts) - (node.level - 1)]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None
