"""``suspicious-comparison`` — chained comparisons that cannot mean it.

PR 1 fixed the motivating bug: ``"weights" in decoded is None`` in
``serialize.py``, which Python chains as
``("weights" in decoded) and (decoded is None)`` — constant-``False``
whenever the membership test is well-defined, so the guard it implemented
never fired.  The shape survives review easily because it *reads* like
``("weights" in decoded) is None``.

The rule flags chained comparisons (two or more operators) that mix
operator categories in ways with no sensible chained reading:

* membership (``in``/``not in``) chained with anything else — the
  PR-1 class, e.g. ``x in d is None`` or ``x in d == True``;
* identity (``is``/``is not``) chained with equality or ordering, e.g.
  ``x == y is None``.

Uniform chains stay legal: ``lo <= x <= hi`` (ordering),
``a == b == c`` (equality), ``x is y is None`` (identity) never flag.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import Finding, LintContext, LintRule

_CATEGORY = {
    ast.In: "membership",
    ast.NotIn: "membership",
    ast.Is: "identity",
    ast.IsNot: "identity",
    ast.Eq: "equality",
    ast.NotEq: "equality",
    ast.Lt: "ordering",
    ast.LtE: "ordering",
    ast.Gt: "ordering",
    ast.GtE: "ordering",
}

_OP_TEXT = {
    ast.In: "in",
    ast.NotIn: "not in",
    ast.Is: "is",
    ast.IsNot: "is not",
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
}


class SuspiciousComparisonRule(LintRule):
    rule_id = "suspicious-comparison"
    category = "correctness"
    description = (
        "no chained comparisons mixing membership/identity with other "
        "operator categories (constant-valued `a in b is None` shapes)"
    )
    rationale = (
        "the PR-1 `\"weights\" in decoded is None` bug: an always-False "
        "chain that read like a parenthesized guard"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare) or len(node.ops) < 2:
                continue
            categories = {_CATEGORY[type(op)] for op in node.ops}
            mixed = ("membership" in categories and len(categories) > 1) or (
                "identity" in categories
                and categories & {"equality", "ordering"}
            )
            if mixed:
                ops = " / ".join(
                    dict.fromkeys(_OP_TEXT[type(op)] for op in node.ops)
                )
                yield self.finding(
                    ctx,
                    node,
                    f"chained comparison mixes `{ops}`: Python evaluates this "
                    "as pairwise legs joined by `and`, which is almost "
                    "certainly constant-valued — parenthesize the comparison "
                    "you meant",
                )
