"""``config-mutation`` — library functions never mutate caller configs.

PR 3 fixed a real bug of this class: the ``policy=`` override path wrote
through to the *caller's* ``chain_config``, so one run's overrides leaked
into the next run's config object.  Config dataclasses
(``ExperimentConfig``, ``DecentralizedConfig``, ``ChainSpec``,
``ScenarioSpec``, ``TrainConfig``, ``PeerConfig``, …) are inputs: a
function that wants a variant makes its own copy with
``dataclasses.replace(config, ...)``.

The rule flags attribute assignment (plain, augmented, annotated — and
``del``) on any function *parameter* that is recognizably a config: its
annotation names a config dataclass, or its name is ``config``/``cfg``/
``spec`` (optionally with a prefix, e.g. ``chain_config``).  Local
construction followed by mutation (``cfg = TrainConfig(); cfg.epochs = 2``)
is builder-pattern code on an object the function owns and never flags.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import Finding, LintContext, LintRule

CONFIG_TYPES = {
    "ExperimentConfig",
    "DecentralizedConfig",
    "ScenarioSpec",
    "ChainSpec",
    "CohortSpec",
    "AdversarySpec",
    "HeterogeneitySpec",
    "TrainConfig",
    "PeerConfig",
    "ClientConfig",
    "NodeConfig",
    "GenesisSpec",
    "SyntheticSpec",
}

CONFIG_NAMES = {"config", "cfg", "spec"}


def _annotation_names(annotation: ast.AST) -> set[str]:
    """Terminal identifiers appearing anywhere in an annotation.

    Handles ``ChainSpec``, ``spec.ChainSpec``, ``Optional[ChainSpec]``,
    and string annotations (``"ChainSpec"``).
    """
    names: set[str] = set()
    for sub in ast.walk(annotation):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            try:
                names |= _annotation_names(ast.parse(sub.value, mode="eval"))
            except SyntaxError:
                pass
    return names


def _looks_like_config_name(name: str) -> bool:
    lowered = name.lower()
    return lowered in CONFIG_NAMES or any(
        lowered.endswith("_" + suffix) for suffix in CONFIG_NAMES
    )


def _config_params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, str]:
    """Parameter name -> why it is considered a config."""
    params: dict[str, str] = {}
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg == "self" or arg.arg == "cls":
            continue
        if arg.annotation is not None:
            hits = _annotation_names(arg.annotation) & CONFIG_TYPES
            if hits:
                params[arg.arg] = f"annotated {sorted(hits)[0]}"
                continue
        if _looks_like_config_name(arg.arg):
            params[arg.arg] = "config-named parameter"
    return params


class ConfigMutationRule(LintRule):
    rule_id = "config-mutation"
    category = "immutability"
    description = (
        "no attribute assignment on config-dataclass parameters; copy "
        "with dataclasses.replace(...) instead"
    )
    rationale = (
        "the PR-3 `chain_config` mutation bug: overrides written through "
        "a parameter leaked into the caller's config object"
    )

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = _config_params(fn)
            if not params:
                continue
            yield from self._check_body(ctx, fn, params)

    def _check_body(self, ctx, fn, params) -> Iterator[Finding]:
        # Do not descend into nested defs: they re-bind their own params
        # and are visited independently by the outer walk.
        stack = list(fn.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for target, verb in _mutation_targets(node):
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in params
                ):
                    name = target.value.id
                    yield self.finding(
                        ctx,
                        target,
                        f"{verb} `{name}.{target.attr}` mutates the caller's "
                        f"config ({params[name]}) — use "
                        f"dataclasses.replace({name}, ...) instead",
                    )
            stack.extend(ast.iter_child_nodes(node))


def _mutation_targets(node: ast.AST) -> list[tuple[ast.AST, str]]:
    if isinstance(node, ast.Assign):
        out = []
        for t in node.targets:
            for el in ast.walk(t):  # tuple-unpacking targets included
                if isinstance(el, ast.Attribute) and isinstance(el.ctx, ast.Store):
                    out.append((el, "assignment to"))
        return out
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [(node.target, "assignment to")]
    if isinstance(node, ast.Delete):
        return [
            (t, "deletion of")
            for t in node.targets
            if isinstance(t, ast.Attribute) and isinstance(t.ctx, ast.Del)
        ]
    return []
