"""``wire-discipline`` — process and socket machinery stays in the runtime.

The out-of-process runtime (:mod:`repro.runtime`) is the single place the
library touches real OS transport: sockets, selectors, frame packing, and
worker process spawning.  Anywhere else, a ``socket`` or ``subprocess``
import is a seam violation — the FL and chain layers must stay pure
simulation, reachable from any process via the wire, never reaching for
the OS themselves.  (``selection_workers`` fans out through
``multiprocessing`` pools, which this rule deliberately leaves alone —
the hazard is hand-rolled transport, not the stdlib pool.)

``pickle`` is banned across ``src/`` outright, runtime included: the wire
codec is canonical JSON + raw blobs precisely so frames are
language-neutral, diffable, and safe to parse from an untrusted peer.  A
pickle import is always the first step toward an undiffable,
arbitrary-code-execution wire format.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.lint.engine import Finding, LintContext, LintRule

#: Modules that only the runtime package may import.
TRANSPORT_MODULES = {"socket", "selectors", "struct", "subprocess"}

#: Serialization modules banned everywhere in ``src/``.
PICKLE_MODULES = {"pickle", "_pickle", "cPickle"}

RUNTIME_PREFIX = "src/repro/runtime/"


def _imported_roots(node: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    """Top-level module names bound by an import statement."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            yield node, alias.name.split(".", 1)[0]
    elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
        yield node, node.module.split(".", 1)[0]


class WireDisciplineRule(LintRule):
    rule_id = "wire-discipline"
    category = "seam"
    description = (
        "`socket`/`selectors`/`struct`/`subprocess` only under "
        "`repro/runtime/`; `pickle` nowhere in `src/`"
    )
    rationale = (
        "the runtime package is the library's only OS-transport surface; "
        "the wire format is canonical JSON + blobs, never pickle"
    )

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        in_runtime = ctx.path.startswith(RUNTIME_PREFIX)
        for node in ast.walk(ctx.tree):
            for stmt, root in _imported_roots(node):
                if root in PICKLE_MODULES:
                    yield self.finding(
                        ctx,
                        stmt,
                        f"`{root}` import in library code — the wire codec is "
                        "canonical JSON + raw blobs (repro.runtime.wire); "
                        "pickle is banned across src/",
                    )
                elif root in TRANSPORT_MODULES and not in_runtime:
                    yield self.finding(
                        ctx,
                        stmt,
                        f"`{root}` import outside repro/runtime/ — OS transport "
                        "and process machinery live only in the runtime "
                        "package; other layers reach the ledger through a "
                        "ChainGateway",
                    )
