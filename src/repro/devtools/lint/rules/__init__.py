"""The shipped rule set, one module per rule.

Adding a rule: subclass :class:`~repro.devtools.lint.engine.LintRule` in a
new module here, set ``rule_id``/``category``/``description``/``rationale``,
scope it with ``applies_to``, and append the class to :data:`ALL_RULES`.
The rule catalog in :mod:`repro.devtools.lint` and the README section are
generated from these class attributes — keep them accurate.
"""

from __future__ import annotations

from repro.devtools.lint.engine import LintRule
from repro.devtools.lint.rules.comparisons import SuspiciousComparisonRule
from repro.devtools.lint.rules.config_mutation import ConfigMutationRule
from repro.devtools.lint.rules.io import IoDisciplineRule
from repro.devtools.lint.rules.journal import JournalDisciplineRule
from repro.devtools.lint.rules.retry import RetryDisciplineRule
from repro.devtools.lint.rules.rng import GlobalRngRule
from repro.devtools.lint.rules.seam import SeamRule
from repro.devtools.lint.rules.wallclock import WallClockRule
from repro.devtools.lint.rules.wire import WireDisciplineRule

ALL_RULES: tuple[type[LintRule], ...] = (
    SeamRule,
    GlobalRngRule,
    WallClockRule,
    JournalDisciplineRule,
    ConfigMutationRule,
    SuspiciousComparisonRule,
    RetryDisciplineRule,
    WireDisciplineRule,
    IoDisciplineRule,
)


def default_rules() -> list[LintRule]:
    """Fresh instances of every shipped rule, in catalog order."""
    return [cls() for cls in ALL_RULES]


def rules_by_id() -> dict[str, type[LintRule]]:
    return {cls.rule_id: cls for cls in ALL_RULES}


__all__ = [
    "ALL_RULES",
    "default_rules",
    "rules_by_id",
    "SeamRule",
    "GlobalRngRule",
    "WallClockRule",
    "JournalDisciplineRule",
    "ConfigMutationRule",
    "SuspiciousComparisonRule",
    "RetryDisciplineRule",
    "WireDisciplineRule",
    "IoDisciplineRule",
]
