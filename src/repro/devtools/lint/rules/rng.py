"""``global-rng`` — stochastic library code draws from named streams.

Bit-identical determinism rests on ``repro/utils/rng.py``: every random
draw comes from a named stream derived from the experiment seed, so
adding draws to one stream never perturbs another.  A single call into
the stdlib ``random`` module or numpy's legacy module-level global RNG
(``np.random.rand()``, ``np.random.seed()``, …) silently couples
unrelated components through hidden global state — and an unseeded
``np.random.default_rng()`` is entropy-seeded, different every run.

Allowed: constructing explicit generators with a seed
(``np.random.default_rng(seed)``), the generator/bit-generator classes
themselves, and ``np.random.Generator`` in type annotations (annotations
are not calls and never flag).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import Finding, LintContext, LintRule
from repro.devtools.lint.rules.common import ImportMap

# numpy.random attributes that do NOT touch module-level global state.
ALLOWED_NP_RANDOM = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

_FIX = "derive a named stream via repro.utils.rng (rng_from / RngFactory)"


class GlobalRngRule(LintRule):
    rule_id = "global-rng"
    category = "determinism"
    description = (
        "no stdlib `random.*` calls, no legacy module-level `np.random.*` "
        "calls, no unseeded `np.random.default_rng()` in library code"
    )
    rationale = (
        "the determinism contract of repro/utils/rng.py: named streams "
        "only, so no draw can perturb another component's sequence"
    )

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = imports.resolve_call_target(node.func)
            if target is None:
                continue
            if target == "random" or target.startswith("random."):
                yield self.finding(
                    ctx,
                    node,
                    f"call to `{target}` uses the stdlib global RNG — {_FIX}",
                )
            elif target.startswith("numpy.random."):
                attr = target[len("numpy.random."):].split(".", 1)[0]
                if attr not in ALLOWED_NP_RANDOM:
                    yield self.finding(
                        ctx,
                        node,
                        f"call to `{target}` uses numpy's module-level global "
                        f"RNG — {_FIX}",
                    )
                elif attr == "default_rng" and not node.args and not node.keywords:
                    yield self.finding(
                        ctx,
                        node,
                        "`default_rng()` without a seed is entropy-seeded and "
                        f"non-reproducible — {_FIX}",
                    )
