"""``io-discipline`` — file I/O stays in the chain's cold-storage package.

The library is a deterministic simulation: same spec + seed, same bytes,
no hidden state on disk.  PR 10's cold store
(:mod:`repro.chain.scale.coldstore`) is the single sanctioned file-I/O
surface — it spills consensus data (blocks, receipts, snapshots) to an
anonymous segment file the OS reclaims on exit.  A ``tempfile`` or
``shutil`` import anywhere else in the library, or a builtin ``open()``
call outside ``repro/chain/scale/``, is a seam violation: it either
leaks run state onto disk (breaking reproducibility and the wire-served
deployment story) or sneaks a second storage subsystem past the one the
hot-window accounting knows about.

``os``/``pathlib``/``io`` are narrower: the runtime package legitimately
uses them for worker-process plumbing (the same carve-out
``wire-discipline`` grants it for sockets), and the scale package may
use them alongside its segment file.  Everywhere else in the library
they are flagged.  Host-side tooling under ``repro/devtools/`` is out of
scope — the linter itself must read source files.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import Finding, LintContext, LintRule
from repro.devtools.lint.rules.wire import RUNTIME_PREFIX, _imported_roots

#: Modules whose whole purpose is filesystem I/O: cold-store only.
FILE_IO_MODULES = {"tempfile", "shutil"}

#: OS-facing modules tolerated in process machinery but nowhere else.
OS_MODULES = {"os", "pathlib", "io"}

SCALE_PREFIX = "src/repro/chain/scale/"
DEVTOOLS_PREFIX = "src/repro/devtools/"


class IoDisciplineRule(LintRule):
    rule_id = "io-discipline"
    category = "seam"
    description = (
        "file I/O (`tempfile`/`shutil`, builtin `open()`) only under "
        "`repro/chain/scale/`; `os`/`pathlib`/`io` also allowed under "
        "`repro/runtime/`"
    )
    rationale = (
        "the cold store is the library's only sanctioned file-I/O "
        "surface; anything else leaks run state onto disk and breaks "
        "the deterministic-simulation contract"
    )

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/") and not path.startswith(DEVTOOLS_PREFIX)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        in_scale = ctx.path.startswith(SCALE_PREFIX)
        in_runtime = ctx.path.startswith(RUNTIME_PREFIX)
        for node in ast.walk(ctx.tree):
            for stmt, root in _imported_roots(node):
                if root in FILE_IO_MODULES and not in_scale:
                    yield self.finding(
                        ctx,
                        stmt,
                        f"`{root}` import outside repro/chain/scale/ — the "
                        "cold store is the library's only file-I/O surface; "
                        "spill payloads through a ColdStore instead",
                    )
                elif root in OS_MODULES and not (in_scale or in_runtime):
                    yield self.finding(
                        ctx,
                        stmt,
                        f"`{root}` import outside repro/chain/scale/ and "
                        "repro/runtime/ — library layers must not touch the "
                        "filesystem or process environment",
                    )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "open"
                and not in_scale
            ):
                yield self.finding(
                    ctx,
                    node,
                    "builtin `open()` outside repro/chain/scale/ — file I/O "
                    "belongs to the cold store; pass data in memory or over "
                    "the wire instead",
                )
