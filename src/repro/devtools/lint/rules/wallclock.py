"""``wall-clock`` — simulated time only, outside the instrumentation set.

The simulator replaced the paper's VM wall clocks with a deterministic
:class:`~repro.utils.clock.SimClock`; experiment results must be a pure
function of the seed.  A stray ``time.time()`` or ``datetime.now()`` in
library code leaks host time into results (timestamps, deadlines, block
intervals) and breaks bit-identical regeneration.

An explicit allowlist keeps the sanctioned *instrumentation* reads:
``scenarios/sweep.py`` (sweep wall-time reporting), ``chain/gateway.py``
and ``runtime/gateway.py`` (GatewayStats latency — including per-RPC wire
timing — excluded from result payloads), and ``metrics/timing.py``
(duration summaries).  Benchmarks and tests are out of scope — timing
things is their job.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import Finding, LintContext, LintRule
from repro.devtools.lint.rules.common import ImportMap

ALLOWED_PATHS = {
    "src/repro/metrics/timing.py",
    "src/repro/scenarios/sweep.py",
    "src/repro/chain/gateway.py",
    "src/repro/runtime/gateway.py",
}

# Clock reads on the stdlib time module.
TIME_READS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "clock_gettime",
    "localtime",
    "gmtime",
}

# Now-reads on the datetime/date classes.
DATETIME_READS = {
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class WallClockRule(LintRule):
    rule_id = "wall-clock"
    category = "determinism"
    description = (
        "no wall-clock reads (`time.time()`, `datetime.now()`, …) outside "
        "the allowlisted instrumentation modules"
    )
    rationale = (
        "results must be a pure function of the seed; the simulator owns "
        "time (SimClock), host clocks only appear in instrumentation"
    )

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/") and path not in ALLOWED_PATHS

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = imports.resolve_call_target(node.func)
            if target is None:
                continue
            bad = (
                target in DATETIME_READS
                or (
                    target.startswith("time.")
                    and target[len("time."):] in TIME_READS
                )
            )
            if bad:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read `{target}()` outside the instrumentation "
                    "allowlist — use the simulator clock (Simulator/SimClock), "
                    "or add the module to the sanctioned timing set",
                )
