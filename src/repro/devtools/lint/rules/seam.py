"""``seam`` — the FL layer talks to the ledger only through ChainGateway.

PR 5 cut the FL↔chain seam: everything outside ``repro/chain/`` programs
against the :class:`~repro.chain.gateway.ChainGateway` protocol and must
never hold a raw :class:`~repro.chain.node.Node`.  The original guard was
a tokenizer scan in the gateway test; this rule is the AST-accurate
replacement, and unlike the token scan it also catches aliased module
imports (``from repro.chain import node as n``) and distinguishes real
``<expr>.node`` attribute access from the module path ``repro.chain.node``
appearing in an import or docstring.

Sanctioned escapes: the class re-exports on the ``repro.chain`` package
root (``Node``/``NodeConfig``/``GenesisSpec``) remain importable for
bootstrap and typing, and chain forensics below the gateway API may reach
``gateway.node`` under an explicit ``# repro-lint: disable=seam`` pragma
(see ``examples/abnormal_model_detection.py``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import Finding, LintContext, LintRule
from repro.devtools.lint.rules.common import resolve_import_from

NODE_MODULE = "repro.chain.node"


def _is_module_path(node: ast.Attribute) -> bool:
    """True for the dotted module path ``repro.chain.node`` itself."""
    value = node.value
    return (
        isinstance(value, ast.Attribute)
        and value.attr == "chain"
        and isinstance(value.value, ast.Name)
        and value.value.id == "repro"
    )


class SeamRule(LintRule):
    rule_id = "seam"
    category = "architecture"
    description = (
        "no `.node` attribute access and no `repro.chain.node` imports "
        "outside repro/chain/; ledger access goes through ChainGateway"
    )
    rationale = (
        "PR 5's gateway seam; previously enforced by a tokenizer scan "
        "that missed aliased imports"
    )

    def applies_to(self, path: str) -> bool:
        if path.startswith("src/repro/"):
            return not path.startswith("src/repro/chain/")
        return path.startswith("examples/")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr == "node":
                if not _is_module_path(node):
                    yield self.finding(
                        ctx,
                        node,
                        "raw `.node` access outside repro/chain/ — go through "
                        "the ChainGateway protocol",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.name
                    if name == NODE_MODULE or name.startswith(NODE_MODULE + "."):
                        yield self.finding(
                            ctx,
                            node,
                            f"import of `{name}` outside repro/chain/ — use the "
                            "repro.chain package re-exports or the gateway",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = resolve_import_from(node, ctx.path)
                if module is None:
                    continue
                if module == NODE_MODULE or module.startswith(NODE_MODULE + "."):
                    yield self.finding(
                        ctx,
                        node,
                        f"import from `{module}` outside repro/chain/ — use the "
                        "repro.chain package re-exports or the gateway",
                    )
                elif module == "repro.chain" and any(
                    alias.name == "node" for alias in node.names
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "import of the `node` module (possibly aliased) outside "
                        "repro/chain/ — use the repro.chain package re-exports "
                        "or the gateway",
                    )
