"""``retry-discipline`` — no silently swallowed gateway failures.

The fault harness works because gateway errors are *typed*
(:class:`~repro.errors.TransientGatewayError`,
:class:`~repro.errors.GatewayTimeoutError`,
:class:`~repro.errors.GatewayUnavailableError`) and handled by name:
the resilient layer retries what is retryable, and the round driver
degrades on what is not.  A bare ``except:`` — or an
``except Exception: pass`` — around a gateway call defeats both: it
swallows the typed signal, hides injected faults from the resilience
counters, and turns a reproducible degradation into a silent wrong
answer.

The rule flags ``try`` blocks whose body calls through a gateway
(any ``*.gateway.<method>(...)`` / ``gateway.<method>(...)`` chain)
and whose handlers either catch everything bare, or catch
``Exception``/``BaseException`` only to ``pass``.  Catching a *specific*
error type — even with a ``pass`` body, like the benign
``except TransactionRejectedError: pass`` on a duplicate re-delivery —
is exactly the discipline the rule wants, and is never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import Finding, LintContext, LintRule
from repro.devtools.lint.rules.common import dotted_chain

#: Exception names too broad to swallow silently around a gateway call.
BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _calls_gateway(stmts: list[ast.stmt]) -> bool:
    """True iff any statement calls through a ``gateway`` attribute chain."""
    for stmt in stmts:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            if chain is not None and "gateway" in chain[:-1]:
                return True
    return False


def _broad_names(handler_type: ast.expr) -> set[str]:
    """Broad exception names a handler clause catches (empty if none)."""
    exprs = (
        handler_type.elts if isinstance(handler_type, ast.Tuple) else [handler_type]
    )
    names = set()
    for expr in exprs:
        if isinstance(expr, ast.Name) and expr.id in BROAD_EXCEPTIONS:
            names.add(expr.id)
    return names


def _swallows(body: list[ast.stmt]) -> bool:
    """True iff the handler body does nothing (``pass`` / ``...`` only)."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant) \
                and stmt.value.value is Ellipsis:
            continue
        return False
    return True


class RetryDisciplineRule(LintRule):
    rule_id = "retry-discipline"
    category = "robustness"
    description = (
        "no bare `except:` and no swallowed `except Exception: pass` around "
        "gateway calls — catch the typed gateway errors by name"
    )
    rationale = (
        "gateway failures carry typed retry/degrade semantics; a blanket "
        "swallow hides injected faults from the resilience counters and "
        "turns reproducible degradation into silent wrong answers"
    )

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/repro/")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            if not _calls_gateway(node.body):
                continue
            for handler in node.handlers:
                if handler.type is None:
                    yield self.finding(
                        ctx,
                        handler,
                        "bare `except:` around a gateway call — catch the "
                        "typed gateway errors (TransientGatewayError, "
                        "GatewayTimeoutError, GatewayUnavailableError) by name",
                    )
                    continue
                broad = _broad_names(handler.type)
                if broad and _swallows(handler.body):
                    yield self.finding(
                        ctx,
                        handler,
                        f"`except {'/'.join(sorted(broad))}: pass` swallows a "
                        "gateway failure — catch the typed gateway errors by "
                        "name, or handle the failure instead of discarding it",
                    )
