"""``journal-discipline`` — every checkpoint mark is discharged on all paths.

PR 2 replaced deep-copy rollback with an undo-log journal
(:mod:`repro.chain.state`): ``mark = state.checkpoint()`` opens a
checkpoint that must later be *discharged* — rolled back, committed,
stored as a per-block mark, or handed to a callee that takes over the
pairing.  A path that abandons its mark leaves the journal's ownership
story ambiguous: the next reader cannot tell a deliberate implicit commit
from a forgotten rollback on an error path (the exact shape of the PR-2
reorg bugs).

The check is flow-sensitive over the statements that follow the binding:
a mark is discharged by any statement in which it is passed to a call
(``rollback(mark)``, ``commit(mark)``, ``can_rollback_to(mark)``,
``self._abort(..., mark, ...)``), stored into a container or attribute,
returned, aliased to another name, or captured by a nested function — and
by ``flatten_journal()`` / ``prune_journal(...)``, which dispose of
journal history wholesale.  ``if``/``try``/``finally`` branch; loops are
conservative (a loop body may run zero times, so discharge inside a loop
does not cover the fall-through path).  Bind the mark *before* a ``try``
so the handler's ``rollback(mark)`` can never see an unbound name.

Marks consumed at the call site (``self._state_marks[h] = s.checkpoint()``,
``prune_journal(self.checkpoint())``, comparisons) are position reads or
immediate stores and are never tracked.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.devtools.lint.engine import Finding, LintContext, LintRule

DISPOSAL_METHODS = {"flatten_journal", "prune_journal"}


def _mentions(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(node)
    )


def _expr_discharges(expr: ast.AST, name: str) -> bool:
    """The mark is handed off (or the journal disposed of) inside ``expr``."""
    for sub in ast.walk(expr):
        if not isinstance(sub, ast.Call):
            continue
        if (
            isinstance(sub.func, ast.Attribute)
            and sub.func.attr in DISPOSAL_METHODS
        ):
            return True
        args = list(sub.args) + [kw.value for kw in sub.keywords]
        if any(_mentions(arg, name) for arg in args):
            return True
    return False


def _simple_stmt_discharges(stmt: ast.stmt, name: str) -> bool:
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        value = stmt.value
        if value is not None and _mentions(value, name):
            # Stored into a container/attribute, or aliased to a new name:
            # either way the mark's pairing now belongs to that binding.
            if any(
                isinstance(t, (ast.Subscript, ast.Attribute, ast.Name, ast.Tuple))
                for t in targets
            ):
                return True
        if value is not None and _expr_discharges(value, name):
            return True
        return False
    return _expr_discharges(stmt, name)


def _paths_discharge(stmts: Sequence[ast.stmt], name: str) -> bool:
    """True iff every control path through ``stmts`` discharges the mark."""
    for index, stmt in enumerate(stmts):
        rest = list(stmts[index + 1:])
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if _mentions(stmt, name):
                return True  # captured by a closure: hand-off
            continue
        if isinstance(stmt, ast.Return):
            return stmt.value is not None and _mentions(stmt.value, name)
        if isinstance(stmt, ast.Raise):
            return stmt.exc is not None and _mentions(stmt.exc, name)
        if isinstance(stmt, ast.If):
            if _expr_discharges(stmt.test, name):
                return True
            return _paths_discharge(stmt.body + rest, name) and _paths_discharge(
                stmt.orelse + rest, name
            )
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            if _expr_discharges(stmt.iter, name):
                return True
            # The body may run zero times; only post-loop code counts.
            return _paths_discharge(list(stmt.orelse) + rest, name)
        if isinstance(stmt, ast.While):
            if _expr_discharges(stmt.test, name):
                return True
            return _paths_discharge(list(stmt.orelse) + rest, name)
        if isinstance(stmt, ast.Try):
            final = list(stmt.finalbody)
            if final and _paths_discharge(final + rest, name):
                return True  # the finally runs on every path
            body_ok = _paths_discharge(
                stmt.body + stmt.orelse + final + rest, name
            )
            handlers_ok = all(
                _paths_discharge(handler.body + final + rest, name)
                for handler in stmt.handlers
            )
            return body_ok and handlers_ok
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return _paths_discharge(stmt.body + rest, name)
        if _simple_stmt_discharges(stmt, name):
            return True
    return False


def _checkpoint_bindings(
    body: Sequence[ast.stmt],
) -> Iterator[tuple[ast.stmt, str, Sequence[ast.stmt]]]:
    """Yield ``(stmt, mark_name, following_stmts)`` for tracked bindings.

    Walks nested blocks; the continuation for a nested binding is the
    remainder of its own block followed by the enclosing blocks' tails
    (finally bodies included when climbing out of a ``try``).
    """

    def visit(stmts: Sequence[ast.stmt], tail: list[ast.stmt]) -> Iterator:
        for index, stmt in enumerate(stmts):
            rest = list(stmts[index + 1:]) + tail
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
                if (
                    isinstance(target, ast.Name)
                    and isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "checkpoint"
                ):
                    yield stmt, target.id, rest
            for block in _child_blocks(stmt):
                yield from visit(block, _block_tail(stmt, rest))

    yield from visit(body, [])


def _child_blocks(stmt: ast.stmt) -> list[Sequence[ast.stmt]]:
    blocks: list[Sequence[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        child = getattr(stmt, attr, None)
        if child and not isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            blocks.append(child)
    for handler in getattr(stmt, "handlers", []) or []:
        blocks.append(handler.body)
    return blocks


def _block_tail(stmt: ast.stmt, rest: list[ast.stmt]) -> list[ast.stmt]:
    if isinstance(stmt, ast.Try) and stmt.finalbody:
        return list(stmt.finalbody) + rest
    return rest


class JournalDisciplineRule(LintRule):
    rule_id = "journal-discipline"
    category = "chain-state"
    description = (
        "every `mark = <state>.checkpoint()` in repro/chain/ must reach a "
        "commit/rollback/mark-store (or journal disposal) on all paths"
    )
    rationale = (
        "PR 2's undo-log journal: an abandoned mark is indistinguishable "
        "from a forgotten rollback on an error path"
    )

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/repro/chain/")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt, mark, rest in _checkpoint_bindings(node.body):
                if not _paths_discharge(rest, mark):
                    yield self.finding(
                        ctx,
                        stmt,
                        f"checkpoint mark `{mark}` is not discharged on every "
                        "path — pair it with commit()/rollback(), store it, or "
                        "dispose of the journal on the paths that drop it",
                    )
