"""Shared utilities: deterministic RNG streams, hashing, simulation clock,
discrete-event engine, and canonical serialization."""

from repro.utils.rng import RngFactory, derive_seed, rng_from
from repro.utils.hashing import sha256_hex, sha256_bytes, keccak_like, hash_object
from repro.utils.clock import SimClock
from repro.utils.events import Event, EventQueue, Simulator
from repro.utils.serialization import canonical_dumps, canonical_loads, encode_bytes, decode_bytes

__all__ = [
    "RngFactory",
    "derive_seed",
    "rng_from",
    "sha256_hex",
    "sha256_bytes",
    "keccak_like",
    "hash_object",
    "SimClock",
    "Event",
    "EventQueue",
    "Simulator",
    "canonical_dumps",
    "canonical_loads",
    "encode_bytes",
    "decode_bytes",
]
