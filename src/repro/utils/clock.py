"""Simulated clock for the discrete-event blockchain network.

The paper measures wall-clock aggregation time on three VirtualBox VMs; we
replace it with a deterministic simulated clock so latency experiments are
reproducible.  ``SimClock`` is a monotone counter advanced only by the event
loop (or explicitly in unit tests).
"""

from __future__ import annotations


class SimClock:
    """Monotone simulated clock measured in (fractional) seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before t=0")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ValueError(f"cannot advance clock backwards (delta={delta})")
        self._now += float(delta)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute ``timestamp``.

        Raises ``ValueError`` if the target is in the past — the event loop
        must never hand out out-of-order timestamps.
        """
        if timestamp < self._now:
            raise ValueError(f"cannot rewind clock from {self._now} to {timestamp}")
        self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"
