"""Deterministic random-number management.

Every stochastic component in the library (dataset synthesis, weight
initialization, mining jitter, network latency, attacker noise) draws from a
named stream derived from a single experiment seed.  This guarantees that
tables and figures regenerate bit-identically while keeping the streams
independent: adding draws to one stream never perturbs another.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

import numpy as np

_MASK64 = (1 << 64) - 1


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a child seed from ``root_seed`` and a path of labels.

    The derivation hashes the root seed together with the textual labels so
    the mapping is stable across processes and Python versions (unlike
    ``hash()``, which is salted).

    >>> derive_seed(7, "data") != derive_seed(7, "mining")
    True
    >>> derive_seed(7, "data") == derive_seed(7, "data")
    True
    """
    h = hashlib.sha256()
    h.update(str(int(root_seed)).encode("utf-8"))
    for label in labels:
        h.update(b"/")
        h.update(str(label).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big") & _MASK64


def rng_from(root_seed: int, *labels: object) -> np.random.Generator:
    """Return a numpy ``Generator`` for the stream named by ``labels``."""
    return np.random.default_rng(derive_seed(root_seed, *labels))


class RngFactory:
    """Factory handing out independent named RNG streams.

    The factory memoizes generators so that repeated requests for the same
    stream return the *same* generator object (continuing its sequence),
    while distinct names give statistically independent streams.

    Example
    -------
    >>> factory = RngFactory(seed=42)
    >>> a = factory.get("client", 0)
    >>> b = factory.get("client", 1)
    >>> a is factory.get("client", 0)
    True
    >>> a is b
    False
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[tuple[str, ...], np.random.Generator] = {}

    def get(self, *labels: object) -> np.random.Generator:
        """Return (creating if needed) the generator for ``labels``."""
        key = tuple(str(label) for label in labels)
        if key not in self._streams:
            self._streams[key] = rng_from(self.seed, *key)
        return self._streams[key]

    def spawn(self, *labels: object) -> "RngFactory":
        """Return a child factory rooted at a derived seed.

        Useful for handing a component its own private namespace.
        """
        return RngFactory(derive_seed(self.seed, *labels))

    def integers(self, *labels: object, low: int = 0, high: int = 2**31) -> int:
        """Draw one integer from the named stream (convenience helper)."""
        return int(self.get(*labels).integers(low, high))

    def stream_names(self) -> Iterator[tuple[str, ...]]:
        """Iterate over the names of streams created so far."""
        return iter(sorted(self._streams))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self.seed}, streams={len(self._streams)})"
