"""Hashing helpers used across the blockchain substrate.

Real Ethereum uses Keccak-256; we use SHA-256 (available in the standard
library) behind the same helper API.  The choice does not affect any result
in the reproduced evaluation: hashes are only used for identification,
commitment, and the PoW puzzle target comparison.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

import numpy as np


def sha256_bytes(data: bytes) -> bytes:
    """Return the raw 32-byte SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Return the hex SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def keccak_like(data: bytes) -> str:
    """Ethereum-style 0x-prefixed 32-byte hash (SHA-256 underneath)."""
    return "0x" + sha256_hex(data)


def _normalize(obj: Any) -> Any:
    """Convert ``obj`` into a JSON-serializable canonical form."""
    if isinstance(obj, dict):
        return {str(key): _normalize(value) for key, value in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_normalize(item) for item in obj]
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": obj.tobytes().hex(), "dtype": str(obj.dtype), "shape": list(obj.shape)}
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    return obj


def hash_object(obj: Any) -> str:
    """Hash an arbitrary JSON-normalizable object deterministically.

    Dictionaries are key-sorted and numpy arrays are hashed over their raw
    buffer, so two structurally equal objects always produce the same hash.
    """
    payload = json.dumps(_normalize(obj), sort_keys=True, separators=(",", ":"))
    return keccak_like(payload.encode("utf-8"))


def hash_concat(*parts: bytes) -> bytes:
    """Hash the length-prefixed concatenation of byte strings.

    Length prefixes prevent ambiguity: ``hash_concat(b"ab", b"c")`` differs
    from ``hash_concat(b"a", b"bc")``.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
    return h.digest()
