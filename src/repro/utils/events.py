"""Minimal discrete-event simulation engine.

The blockchain network (gossip latency, mining completion, block arrival)
runs on this engine.  Events carry a timestamp, an insertion sequence number
(for FIFO tie-breaking at equal timestamps), and a zero-argument callback.

The engine is intentionally tiny: a binary heap plus a simulated clock, with
run-until-time and run-until-idle drivers.  Determinism is guaranteed because
tie-breaking uses insertion order, never object identity.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.utils.clock import SimClock


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is (time, seq) so simultaneous events fire in insertion order.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        event = Event(time=float(time), seq=next(self._counter), callback=callback, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None


class Simulator:
    """Drives an :class:`EventQueue` against a :class:`SimClock`.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_in(2.0, lambda: fired.append("late"))
    >>> _ = sim.schedule_in(1.0, lambda: fired.append("early"))
    >>> sim.run()
    >>> fired
    ['early', 'late']
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.queue = EventQueue()
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule at absolute time; must not be in the past."""
        if time < self.clock.now:
            raise ValueError(f"cannot schedule at {time} < now {self.clock.now}")
        return self.queue.push(time, callback, label)

    def schedule_in(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.queue.push(self.clock.now + delay, callback, label)

    def step(self) -> bool:
        """Process one event; return ``False`` if the queue was empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        event.callback()
        self.events_processed += 1
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` passes, or the budget ends.

        Returns the number of events processed by this call.  When ``until``
        is given, the clock is left at ``min(until, last event time)`` and
        events scheduled after ``until`` remain queued.
        """
        processed = 0
        while True:
            if max_events is not None and processed >= max_events:
                break
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                # Nested run() calls (an event callback running the
                # simulator further, e.g. an injected latency spike inside
                # a scheduled submit) can leave the clock past this
                # frame's target — never rewind it.
                if until > self.clock.now:
                    self.clock.advance_to(until)
                break
            self.step()
            processed += 1
        return processed
