"""Canonical serialization for chain payloads and model weights.

Transactions, blocks, and contract call arguments must hash identically on
every node, so all wire encoding goes through ``canonical_dumps``: JSON with
sorted keys and explicit tagging for bytes and numpy arrays.  This plays the
role RLP plays in Ethereum.
"""

from __future__ import annotations

import base64
import json
from typing import Any

import numpy as np

from repro.errors import SerializationError

_BYTES_TAG = "__bytes_b64__"
_NDARRAY_TAG = "__ndarray_b64__"


def encode_bytes(data: bytes) -> str:
    """Base64-encode bytes into a JSON-safe string."""
    return base64.b64encode(data).decode("ascii")


def decode_bytes(text: str) -> bytes:
    """Inverse of :func:`encode_bytes`."""
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except Exception as exc:  # binascii.Error and friends
        raise SerializationError(f"invalid base64 payload: {exc}") from exc


def _encode(obj: Any) -> Any:
    if isinstance(obj, dict):
        return {str(key): _encode(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_encode(item) for item in obj]
    if isinstance(obj, bytes):
        return {_BYTES_TAG: encode_bytes(obj)}
    if isinstance(obj, np.ndarray):
        contiguous = np.ascontiguousarray(obj)
        return {
            _NDARRAY_TAG: encode_bytes(contiguous.tobytes()),
            "dtype": str(contiguous.dtype),
            "shape": list(contiguous.shape),
        }
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise SerializationError(f"cannot canonically serialize {type(obj).__name__}")


def _decode(obj: Any) -> Any:
    if isinstance(obj, dict):
        if set(obj) == {_BYTES_TAG}:
            return decode_bytes(obj[_BYTES_TAG])
        if _NDARRAY_TAG in obj and set(obj) == {_NDARRAY_TAG, "dtype", "shape"}:
            raw = decode_bytes(obj[_NDARRAY_TAG])
            array = np.frombuffer(raw, dtype=np.dtype(obj["dtype"]))
            return array.reshape(obj["shape"]).copy()
        return {key: _decode(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [_decode(item) for item in obj]
    return obj


def canonical_dumps(obj: Any) -> bytes:
    """Serialize ``obj`` to canonical (sorted-key) JSON bytes."""
    try:
        return json.dumps(_encode(obj), sort_keys=True, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise SerializationError(str(exc)) from exc


def canonical_loads(data: bytes) -> Any:
    """Inverse of :func:`canonical_dumps`."""
    try:
        return _decode(json.loads(data.decode("utf-8")))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"invalid canonical payload: {exc}") from exc
