"""JSON codec for the :class:`~repro.scenarios.spec.ScenarioSpec` tree.

Worker processes rebuild their whole world — datasets, models, rng
streams — from the spec alone, so the init task ships the spec over the
wire.  The spec tree is frozen dataclasses all the way down; this codec
walks a closed registry of those types (``{"__spec__": <class name>,
"fields": {...}}``) instead of pickling, per the wire-discipline rule.

Decoding coerces JSON lists back to tuples: every sequence field in the
spec tree is a tuple (``client_ids``, ``volumes``, ``times``, ``crash``
windows), and the frozen dataclasses must stay hashable after a
round-trip because :class:`~repro.scenarios.runner.ScenarioContext`
memoizes datasets on spec-derived keys.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Any

from repro.data.synthetic import SyntheticSpec
from repro.errors import WireProtocolError
from repro.core.participation import ParticipationSpec
from repro.faults import FaultSpec, RetryPolicy
from repro.fl.async_policy import Deadline, WaitForAll, WaitForK
from repro.scenarios.spec import (
    AdversarySpec,
    ChainSpec,
    CohortSpec,
    HeterogeneitySpec,
    ScenarioSpec,
)

_TAG = "__spec__"

#: The closed set of dataclasses allowed inside a wire-encoded spec.
SPEC_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        ScenarioSpec,
        CohortSpec,
        AdversarySpec,
        HeterogeneitySpec,
        ChainSpec,
        FaultSpec,
        ParticipationSpec,
        RetryPolicy,
        SyntheticSpec,
        WaitForAll,
        WaitForK,
        Deadline,
    )
}


def encode_spec(obj: Any) -> Any:
    """Recursively encode a spec tree into JSON-able primitives."""
    if is_dataclass(obj) and not isinstance(obj, type):
        name = type(obj).__name__
        if name not in SPEC_TYPES:
            raise WireProtocolError(f"{name} is not a registered wire spec type")
        return {
            _TAG: name,
            "fields": {spec.name: encode_spec(getattr(obj, spec.name)) for spec in fields(obj)},
        }
    if isinstance(obj, (list, tuple)):
        return [encode_spec(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): encode_spec(value) for key, value in obj.items()}
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise WireProtocolError(f"cannot wire-encode spec field of type {type(obj).__name__}")


def decode_spec(payload: Any) -> Any:
    """Inverse of :func:`encode_spec`; sequences come back as tuples."""
    if isinstance(payload, dict):
        if _TAG in payload:
            cls = SPEC_TYPES.get(payload[_TAG])
            if cls is None:
                raise WireProtocolError(f"unknown wire spec type {payload[_TAG]!r}")
            raw = payload.get("fields", {})
            if not isinstance(raw, dict):
                raise WireProtocolError(f"malformed fields payload for {payload[_TAG]}")
            return cls(**{key: decode_spec(value) for key, value in raw.items()})
        return {key: decode_spec(value) for key, value in payload.items()}
    if isinstance(payload, list):
        return tuple(decode_spec(item) for item in payload)
    return payload
