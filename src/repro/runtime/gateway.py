"""Worker-side remote gateway and off-chain mirror.

:class:`RemoteGateway` implements the :class:`~repro.chain.gateway.ChainGateway`
protocol over a :class:`~repro.runtime.wire.WireChannel`: every method is
one RPC frame to the coordinator's :class:`~repro.runtime.server.GatewayServer`,
which routes it into the peer's own in-process gateway.  It stacks under
the existing decorators exactly like the in-process backend — a worker
running ``BatchingGateway(RemoteGateway(...))`` turns the head-keyed read
cache into a real latency shield across the process boundary.

:class:`RemoteOffchain` mirrors the :class:`~repro.core.offchain.OffchainStore`
surface the FL layer uses.  Weight payloads cross the wire exactly once
in each direction as codec-v2 blobs and are decoded/cached in a local
store, so repeated reads of the same commitment never re-transfer bytes.

Wire telemetry (bytes, round trips, per-method latency) lands in the
standard :class:`~repro.chain.gateway.GatewayStats` fields this PR added;
the latency reads use ``time.perf_counter`` and are allowlisted by the
wall-clock lint alongside the in-process gateway's ``read_seconds``.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional, Sequence

from repro.chain.crypto import Address
from repro.chain.gateway import DEFAULT_WAIT_DEADLINE, CallRequest, GatewayStats
from repro.chain.transaction import LogEntry, Transaction
from repro.core.offchain import OffchainStore
from repro.errors import WireProtocolError
from repro.runtime.wire import WireChannel, WireCondition, decode_error


def rpc(
    channel: WireChannel,
    method: str,
    params: Optional[dict] = None,
    blobs: tuple[bytes, ...] = (),
    peer: Optional[str] = None,
    stats: Optional[GatewayStats] = None,
) -> tuple[Any, tuple[bytes, ...]]:
    """One request/response round trip over ``channel``.

    The channel is strictly half-duplex per direction while an RPC is in
    flight: the caller sends one ``rpc`` frame and reads exactly one
    response frame.  Typed errors the server encoded are re-raised here
    as the original :class:`~repro.errors.GatewayError` subclass.
    """
    header = {"kind": "rpc", "method": method, "params": params or {}}
    if peer is not None:
        header["peer"] = peer
    started = time.perf_counter()
    sent = channel.send(header, blobs)
    response, out_blobs, received = channel.recv()
    elapsed = time.perf_counter() - started
    if stats is not None:
        stats.rpc_round_trips += 1
        stats.wire_bytes_sent += sent
        stats.wire_bytes_received += received
        stats.wire_seconds += elapsed
        stats.wire_method_seconds[method] = (
            stats.wire_method_seconds.get(method, 0.0) + elapsed
        )
    kind = response.get("kind")
    if kind == "rpc-error":
        raise decode_error(response.get("error", {}))
    if kind != "rpc-result":
        raise WireProtocolError(f"expected an rpc response frame, got {kind!r}")
    return response.get("value"), out_blobs


class HeadSignal:
    """Latest freshness token the coordinator pushed, shared worker-wide.

    The coordinator stamps every task frame with ``(token, clock)``; the
    chain can only advance while the event engine pumps — i.e. inside a
    ``wait_for`` — so between the stamp and the next wait the token
    identifies one frozen-chain window exactly.  This is the "pushed
    new-heads subscription" the batching gateway's contract expects of a
    remote transport: serving ``observe_head`` from it makes a cache
    validation cost zero round trips instead of one.

    The token is an *opaque window id* (epoch-prefixed head hash), not a
    verbatim head hash: peers hold per-node chain views, so no single
    node's hash could stand in for all of them across windows.  One
    instance per worker, shared by every peer's transport: any peer's
    wait invalidates the signal for all of them (the pump moved the
    whole chain, not one peer's view of it).
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[tuple[str, float]] = None


class RemoteGateway:
    """:class:`ChainGateway` backend that reaches the ledger over the wire.

    One instance per peer per worker; all instances in a worker share the
    worker's single coordinator connection.  Reads, submits, and waits
    mirror the in-process gateway's semantics exactly — the server routes
    each RPC into the same gateway object an in-process run would call —
    so results are byte-identical and only the transport cost differs.
    """

    def __init__(
        self,
        channel: WireChannel,
        peer_id: str,
        default_deadline: float = DEFAULT_WAIT_DEADLINE,
        head_signal: Optional[HeadSignal] = None,
    ) -> None:
        self.channel = channel
        self.peer_id = peer_id
        self.default_deadline = default_deadline
        self.head_signal = head_signal
        self.stats = GatewayStats()

    def _rpc(
        self, method: str, params: Optional[dict] = None, blobs: tuple[bytes, ...] = ()
    ) -> tuple[Any, tuple[bytes, ...]]:
        return rpc(
            self.channel, method, params, blobs, peer=self.peer_id, stats=self.stats
        )

    # -- reads -------------------------------------------------------------

    def call(self, contract: Address, method: str, **args: Any) -> Any:
        self.stats.calls += 1
        value, _ = self._rpc("call", {"contract": contract, "method": method, "args": args})
        return value

    def batch_call(self, requests: Sequence[CallRequest]) -> list[Any]:
        self.stats.batch_calls += 1
        self.stats.batched_reads += len(requests)
        value, _ = self._rpc(
            "batch_call",
            {
                "requests": [
                    {"contract": r.contract, "method": r.method, "args": dict(r.args)}
                    for r in requests
                ]
            },
        )
        return list(value)

    def height(self) -> int:
        self.stats.height_reads += 1
        value, _ = self._rpc("height")
        return int(value)

    def head_hash(self) -> str:
        self.stats.head_checks += 1
        value, _ = self._rpc("head_hash")
        return str(value)

    def observe_head(self) -> tuple[str, float]:
        """Freshness token and clock — pushed signal first, RPC else.

        The pushed :class:`HeadSignal` is exact whenever set (the chain
        is frozen between the coordinator's stamp and the next wait), so
        batching lookups normally pay no wire cost here; the RPC is the
        cold-start fallback and its result (this peer's real head hash,
        an equally valid window id) re-primes the signal.
        """
        signal = self.head_signal
        if signal is not None and signal.value is not None:
            return signal.value
        value, _ = self._rpc("observe_head")
        observed = (str(value["head"]), float(value["now"]))
        if signal is not None:
            signal.value = observed
        return observed

    def has_contract(self, address: Address) -> bool:
        self.stats.contract_checks += 1
        value, _ = self._rpc("has_contract", {"address": address})
        return bool(value)

    def get_logs(
        self,
        address: Optional[Address] = None,
        topic: Optional[str] = None,
        from_block: int = 0,
        to_block: Optional[int] = None,
    ) -> list:
        self.stats.log_queries += 1
        value, _ = self._rpc(
            "get_logs",
            {
                "address": address,
                "topic": topic,
                "from_block": from_block,
                "to_block": to_block,
            },
        )
        return [
            LogEntry(address=entry["address"], topic=entry["topic"], payload=entry["payload"])
            for entry in value
        ]

    def next_nonce(self, address: Address) -> int:
        self.stats.nonce_reads += 1
        value, _ = self._rpc("next_nonce", {"address": address})
        return int(value)

    # -- writes ------------------------------------------------------------

    def submit(self, tx: Transaction) -> str:
        self.stats.submits += 1
        value, _ = self._rpc("submit", {"tx": tx.to_dict()})
        return str(value)

    # -- clock / waits -----------------------------------------------------

    def now(self) -> float:
        value, _ = self._rpc("now")
        return float(value)

    def wait_for(
        self,
        predicate: Callable[[], bool] | WireCondition,
        what: str,
        deadline: Optional[float] = None,
    ) -> float:
        """Wait on a declarative condition evaluated coordinator-side.

        Only :class:`~repro.runtime.wire.WireCondition` can cross the
        boundary — a plain callable would require pickling, which the
        wire discipline forbids.
        """
        if not isinstance(predicate, WireCondition):
            raise WireProtocolError(
                "remote wait_for needs a WireCondition; a callable predicate "
                "cannot cross the process boundary"
            )
        self.stats.waits += 1
        try:
            value, _ = self._rpc(
                "wait_for",
                {
                    "condition": predicate.to_dict(),
                    "what": what,
                    "deadline": deadline if deadline is not None else self.default_deadline,
                },
            )
        finally:
            # The wait pumped the coordinator's event engine — the only
            # way the chain advances mid-task — so the pushed head
            # observation (every transport's, not just this peer's) is
            # stale until the next task stamp or cold observe.
            if self.head_signal is not None:
                self.head_signal.value = None
        return float(value)


class RemoteOffchain:
    """Off-chain blob store proxy with a content-addressed local mirror.

    Keys are content hashes, so a blob fetched or pushed once is served
    locally forever after — the mirror inherits the real store's decode
    cache and integrity checks by *being* a real store.
    """

    def __init__(self, channel: WireChannel, stats: Optional[GatewayStats] = None) -> None:
        self.channel = channel
        self.stats = stats if stats is not None else GatewayStats()
        self._mirror = OffchainStore()

    def _rpc(
        self, method: str, params: Optional[dict] = None, blobs: tuple[bytes, ...] = ()
    ) -> tuple[Any, tuple[bytes, ...]]:
        return rpc(self.channel, method, params, blobs, stats=self.stats)

    def __contains__(self, key: str) -> bool:
        if key in self._mirror:
            return True
        value, _ = self._rpc("offchain_contains", {"key": key})
        return bool(value)

    def put(self, payload: bytes) -> str:
        """Store a raw blob locally and push it to the coordinator."""
        key = self._mirror.put(payload)
        value, _ = self._rpc("offchain_put", blobs=(payload,))
        if value != key:
            raise WireProtocolError(
                f"offchain key mismatch: local {key[:16]}… vs remote {str(value)[:16]}…"
            )
        return key

    def put_archive(self, archive: Any) -> str:
        """Commit an encoded weight archive (local mirror + wire push)."""
        key = self._mirror.put_archive(archive)
        value, _ = self._rpc("offchain_put", blobs=(archive.payload,))
        if value != key:
            raise WireProtocolError(
                f"offchain key mismatch: local {key[:16]}… vs remote {str(value)[:16]}…"
            )
        return key

    def put_weights(self, weights: dict) -> str:
        from repro.nn.serialize import as_archive

        return self.put_archive(as_archive(weights))

    def get(self, key: str) -> bytes:
        if key not in self._mirror:
            _, blobs = self._rpc("offchain_get", {"key": key})
            self._mirror.put(blobs[0])
        return self._mirror.get(key)

    def get_weights(self, key: str) -> dict:
        if key not in self._mirror:
            _, blobs = self._rpc("offchain_get", {"key": key})
            self._mirror.put(blobs[0])
        return self._mirror.get_weights(key)

    def fetch_available(self, keys: Sequence[str]) -> dict[str, dict]:
        """Batch-fetch decoded weights for the keys present upstream.

        Missing blobs are pulled in one RPC; everything else is served
        from the mirror.  Matches ``OffchainStore.fetch_available``:
        deduplicated, present-only, in first-seen key order.
        """
        missing = []
        seen = set()
        for key in keys:
            if key not in seen and key not in self._mirror:
                missing.append(key)
            seen.add(key)
        if missing:
            value, blobs = self._rpc("offchain_fetch", {"keys": missing})
            for blob in blobs:
                self._mirror.put(blob)
            del value  # ordered key list; presence is re-derived from the mirror
        found: dict[str, dict] = {}
        for key in keys:
            if key not in found and key in self._mirror:
                found[key] = self._mirror.get_weights(key)
        return found
