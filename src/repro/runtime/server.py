"""Coordinator-side RPC dispatcher: the ledger served over the wire.

:class:`GatewayServer` wraps the cohort's per-peer in-process gateways
(node + simulator underneath) and the shared off-chain store, and answers
one RPC frame at a time.  It owns *dispatch only* — framing and socket
readiness live with the caller (the coordinator's select loop inline
between task results, or a test pumping a socketpair), so the server
stays deterministic and trivially testable.

Every RPC names the peer it acts as; the server routes it to that peer's
*innermost* gateway layer, the same object the coordinator's own round
driver reads through.  Errors cross the boundary typed: any
:class:`~repro.errors.GatewayError` (or off-chain
:class:`~repro.errors.SerializationError` / wait-drain
:class:`~repro.errors.NetworkError`) is encoded with class name and
message and re-raised identically worker-side.
"""

from __future__ import annotations

from typing import Any

from repro.chain.gateway import CallRequest, ChainGateway, gateway_layers
from repro.chain.transaction import Transaction
from repro.core.offchain import OffchainStore
from repro.errors import (
    GatewayError,
    NetworkError,
    SerializationError,
    WireProtocolError,
)
from repro.runtime.wire import WireChannel, WireCondition, encode_error

#: Exception types that cross the wire typed instead of crashing the
#: coordinator: the gateway hierarchy plus the off-chain store's missing-
#: blob error and the simulator-drained wait error.
_WIRE_SAFE_ERRORS = (GatewayError, SerializationError, NetworkError)


class GatewayServer:
    """Serve a cohort's ledger gateways and off-chain store over frames."""

    def __init__(
        self, gateways: dict[str, ChainGateway], offchain: OffchainStore
    ) -> None:
        # Route to the innermost layer: worker-side decorators (batching,
        # resilience) already ran client-side; re-entering a coordinator-
        # side decorator would double-count and double-cache.
        self.gateways = {
            peer_id: gateway_layers(gateway)[-1] for peer_id, gateway in gateways.items()
        }
        self.offchain = offchain

    # -- frame-level entry points ------------------------------------------

    def handle(self, header: dict, blobs: tuple[bytes, ...]) -> tuple[dict, tuple[bytes, ...]]:
        """Answer one ``rpc`` frame; never raises for wire-safe errors."""
        try:
            value, out_blobs = self.dispatch(
                header.get("method", ""), header.get("peer"), header.get("params", {}), blobs
            )
        except _WIRE_SAFE_ERRORS as exc:
            return {"kind": "rpc-error", "error": encode_error(exc)}, ()
        return {"kind": "rpc-result", "value": value}, out_blobs

    def serve_channel(self, channel: WireChannel) -> None:
        """Blockingly serve one connection until EOF (test harness loop)."""
        from repro.runtime.wire import WireClosedError

        while True:
            try:
                header, blobs, _ = channel.recv()
            except (WireClosedError, OSError):
                return
            if header.get("kind") != "rpc":
                channel.send(
                    {
                        "kind": "rpc-error",
                        "error": encode_error(
                            WireProtocolError(f"server expects rpc frames, got {header.get('kind')!r}")
                        ),
                    }
                )
                continue
            response, out_blobs = self.handle(header, blobs)
            channel.send(response, out_blobs)

    # -- dispatch ----------------------------------------------------------

    def _gateway(self, peer: Any) -> ChainGateway:
        gateway = self.gateways.get(peer)
        if gateway is None:
            raise WireProtocolError(f"rpc names unknown peer {peer!r}")
        return gateway

    def dispatch(
        self, method: str, peer: Any, params: dict, blobs: tuple[bytes, ...]
    ) -> tuple[Any, tuple[bytes, ...]]:
        """Execute one RPC; returns (JSON-safe value, response blobs)."""
        if method == "ping":
            return "pong", ()
        if method.startswith("offchain_"):
            return self._dispatch_offchain(method, params, blobs)

        gateway = self._gateway(peer)
        if method == "call":
            return gateway.call(params["contract"], params["method"], **params["args"]), ()
        if method == "batch_call":
            requests = [
                CallRequest(entry["contract"], entry["method"], entry["args"])
                for entry in params["requests"]
            ]
            return gateway.batch_call(requests), ()
        if method == "submit":
            return gateway.submit(Transaction.from_dict(params["tx"])), ()
        if method == "height":
            return gateway.height(), ()
        if method == "head_hash":
            return gateway.head_hash(), ()
        if method == "observe_head":
            return {"head": gateway.head_hash(), "now": gateway.now()}, ()
        if method == "has_contract":
            return gateway.has_contract(params["address"]), ()
        if method == "get_logs":
            entries = gateway.get_logs(
                address=params.get("address"),
                topic=params.get("topic"),
                from_block=params.get("from_block", 0),
                to_block=params.get("to_block"),
            )
            return [
                {"address": e.address, "topic": e.topic, "payload": e.payload}
                for e in entries
            ], ()
        if method == "next_nonce":
            return gateway.next_nonce(params["address"]), ()
        if method == "now":
            return gateway.now(), ()
        if method == "wait_for":
            condition = WireCondition.from_dict(params["condition"])
            return (
                gateway.wait_for(
                    condition.build(gateway), params["what"], deadline=params.get("deadline")
                ),
                (),
            )
        raise WireProtocolError(f"unknown rpc method {method!r}")

    def _dispatch_offchain(
        self, method: str, params: dict, blobs: tuple[bytes, ...]
    ) -> tuple[Any, tuple[bytes, ...]]:
        if method == "offchain_put":
            if len(blobs) != 1:
                raise WireProtocolError("offchain_put expects exactly one blob")
            return self.offchain.put(blobs[0]), ()
        if method == "offchain_get":
            return None, (self.offchain.get(params["key"]),)
        if method == "offchain_contains":
            return params["key"] in self.offchain, ()
        if method == "offchain_fetch":
            present = [key for key in params["keys"] if key in self.offchain]
            return present, tuple(self.offchain.get(key) for key in present)
        raise WireProtocolError(f"unknown rpc method {method!r}")
