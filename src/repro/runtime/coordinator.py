"""Multiprocess round driver: the DecentralizedFL barrier over worker tasks.

:class:`MultiprocessDecentralizedFL` subclasses the in-process driver and
replaces exactly its *local-compute* seams (``_train_cohort``,
``_fetch_view``, ``_personalized_round``, ``_global_vote_round``,
``_rate_round``, ``export_model_bytes``) with task dispatch to worker
processes.  Everything that makes the simulation a simulation stays here,
untouched: the event engine and its clock, the PoW chain fabric, block
propagation, the round barrier, and the waiting policies.  Workers hold
the datasets and models; their only ledger access is RPC frames this
coordinator serves inline — so every submission still lands on the
mempool in scheduler order, which is what keeps a multiprocess run
byte-identical to the in-process one at the same seed.

Wire discipline of the select loop: each worker has at most one
outstanding task, and a worker mid-task blocks on at most one RPC at a
time — so the coordinator can always serve every readable channel
without buffering, and a ``result`` frame retires the worker's slot.
Worker death (channel EOF, process exit) surfaces as
:class:`~repro.errors.WorkerCrashedError`, a
:class:`~repro.errors.GatewayUnavailableError` subclass, so it enters
the same typed-error path the resilience layer already speaks.
"""

from __future__ import annotations

import selectors
from dataclasses import dataclass
from typing import Optional

from repro.chain.crypto import KeyPair
from repro.chain.gateway import ChainGateway
from repro.chain.transaction import Transaction
from repro.core.decentralized import (
    DecentralizedConfig,
    DecentralizedFL,
    PeerRoundLog,
)
from repro.core.peer import FullPeer, PeerConfig
from repro.errors import ConfigError, WireProtocolError, WorkerCrashedError
from repro.runtime.broker import Broker, WorkerHandle
from repro.runtime.server import GatewayServer
from repro.runtime.speccodec import encode_spec
from repro.runtime.wire import WireClosedError, decode_error
from repro.utils.rng import RngFactory


@dataclass(frozen=True)
class _UpdateStub:
    """Coordinator-side stand-in for a worker-held :class:`ModelUpdate`.

    The round barrier only ever asks a view two questions — is it empty,
    and which peers contributed — so the stub carries the contributor id
    and nothing else; the decoded weights never leave the workers.
    """

    client_id: str


def _merge_numbers(into: dict, extra: dict) -> None:
    """Key-wise numeric accumulation, recursing into nested dicts."""
    for key, value in extra.items():
        if isinstance(value, dict):
            _merge_numbers(into.setdefault(key, {}), value)
        else:
            into[key] = into.get(key, 0) + value


class MultiprocessDecentralizedFL(DecentralizedFL):
    """DecentralizedFL whose cohort's models live in worker processes."""

    def __init__(
        self,
        spec,
        peer_configs: list[PeerConfig],
        config: DecentralizedConfig,
        rng_factory: Optional[RngFactory] = None,
        workers: int = 2,
    ) -> None:
        self.spec = spec
        self.num_workers = max(1, min(int(workers), len(peer_configs)))
        self.broker = Broker(self.num_workers)
        self.handles: list[WorkerHandle] = []
        self.server: Optional[GatewayServer] = None
        self._exports: dict[str, bytes] = {}
        self._worker_stats: list[dict] = []
        self._stamp_epoch = 0
        super().__init__(
            peer_configs,
            {},
            {},
            model_builder=None,
            config=config,
            rng_factory=rng_factory,
        )
        # Worker i owns peers at cohort positions i, i+W, i+2W, ... — the
        # same assignment rule the workers apply independently in init.
        # Positions are taken over the *full* roster (stable under
        # sampling); workers simply skip identities the participation
        # plan never materializes, mirroring the base-class loop.
        self._owner = {
            peer_id: position % self.num_workers
            for position, peer_id in enumerate(self.peer_ids)
        }

    # -- construction seams ------------------------------------------------

    def _build_peer(
        self,
        pc: PeerConfig,
        keypair: KeyPair,
        gateway: ChainGateway,
        train_sets,
        test_sets,
        model_builder,
    ) -> FullPeer:
        # Chain-only: signs and reads the ledger for the round barrier;
        # the model lives with the owning worker.  The peer rng stream is
        # created (same recipe as in-process) but never drawn from here —
        # the worker re-derives and draws the identical stream.
        return FullPeer(
            config=pc,
            keypair=keypair,
            gateway=gateway,
            offchain=self.offchain,
            train_set=None,
            test_set=None,
            model_builder=None,
            rng=self.rngs.get("peer", pc.peer_id),
        )

    def _build_engines(self) -> dict:
        return {}

    # -- worker fleet ------------------------------------------------------

    def _ensure_runtime(self) -> None:
        """Launch workers and have them rebuild their peer shards."""
        if self.handles:
            return
        self.server = GatewayServer(
            {peer_id: peer.gateway for peer_id, peer in self.peers.items()},
            self.offchain,
        )
        self.handles = self.broker.launch()
        spec_payload = encode_spec(self.spec)
        owned = self._run_tasks(
            {
                handle.index: {
                    "op": "init",
                    "params": {"spec": spec_payload, "workers": self.num_workers},
                }
                for handle in self.handles
            }
        )
        for index, (peer_ids, _blobs) in owned.items():
            expected = sorted(
                peer_id
                for peer_id, owner in self._owner.items()
                if owner == index and peer_id in self.peers
            )
            if list(peer_ids) != expected:
                raise WireProtocolError(
                    f"worker {index} owns {peer_ids}, coordinator expected {expected}"
                )

    def _run_tasks(self, tasks: dict[int, dict]) -> dict[int, tuple]:
        """Dispatch one task per listed worker; serve RPCs until all reply.

        Returns ``{worker_index: (value, blobs)}``.  A typed error result
        re-raises here; a closed channel or dead process raises
        :class:`WorkerCrashedError`.
        """
        results: dict[int, tuple] = {}
        pending = set(tasks)
        stamp = self._head_stamp()
        selector = selectors.DefaultSelector()
        try:
            for index in sorted(tasks):
                handle = self.handles[index]
                handle.channel.send({"kind": "task", "head": stamp, **tasks[index]})
                selector.register(handle.channel.sock, selectors.EVENT_READ, handle)
            while pending:
                events = selector.select(timeout=1.0)
                if not events:
                    self._check_workers_alive(pending)
                    continue
                for key, _mask in events:
                    handle: WorkerHandle = key.data
                    if handle.index not in pending:
                        continue
                    try:
                        header, blobs, _size = handle.channel.recv()
                    except (WireClosedError, OSError) as exc:
                        raise WorkerCrashedError(
                            f"worker {handle.index} channel closed mid-task "
                            f"(exit code {handle.process.poll()})"
                        ) from exc
                    kind = header.get("kind")
                    if kind == "rpc":
                        assert self.server is not None
                        response, out_blobs = self.server.handle(header, blobs)
                        handle.channel.send(response, out_blobs)
                    elif kind == "result":
                        pending.discard(handle.index)
                        selector.unregister(handle.channel.sock)
                        if "error" in header:
                            raise decode_error(header["error"])
                        results[handle.index] = (header.get("value"), blobs)
                    else:
                        raise WireProtocolError(
                            f"coordinator got unexpected frame kind {kind!r} "
                            f"from worker {handle.index}"
                        )
        finally:
            selector.close()
        return results

    def _run_task(self, index: int, op: str, params: dict) -> tuple:
        return self._run_tasks({index: {"op": op, "params": params}})[index]

    def _head_stamp(self) -> dict:
        """Freshness token pushed with every task frame.

        The event engine only pumps in ``_wait_until``/``wait_for`` —
        never while workers hold parallel tasks — so a stamp taken at
        dispatch stays valid for the batch's whole lifetime.  It is the
        "pushed new-heads subscription" the batching gateway's contract
        expects of a remote transport: worker-side cache lookups
        validate against it for zero round trips.

        The token is epoch-prefixed so it can never repeat across
        dispatch batches: peers hold *per-node* chain views (gossip
        lag), and a bare head hash from one node could coincide across
        a pump that changed another node's view.  Epoch uniqueness
        bounds cache reuse to one frozen-chain window, which keeps the
        shared signal provably exact for every peer.
        """
        assert self.server is not None
        self._stamp_epoch += 1
        gateway = next(iter(self.server.gateways.values()))
        return {
            "hash": f"{self._stamp_epoch}:{gateway.head_hash()}",
            "now": gateway.now(),
        }

    def _check_workers_alive(self, pending: set) -> None:
        for index in sorted(pending):
            handle = self.handles[index]
            if handle.process.poll() is not None:
                raise WorkerCrashedError(
                    f"worker {index} exited with code {handle.process.returncode} "
                    "while a task was outstanding"
                )

    def _by_owner(self, peer_ids: list[str]) -> dict[int, list[str]]:
        groups: dict[int, list[str]] = {}
        for peer_id in peer_ids:
            groups.setdefault(self._owner[peer_id], []).append(peer_id)
        return groups

    # -- lifecycle ---------------------------------------------------------

    def deploy_contracts(self) -> None:
        self._ensure_runtime()
        super().deploy_contracts()
        first = self.peers[self.peer_ids[0]]
        self._run_tasks(
            {
                handle.index: {
                    "op": "configure",
                    "params": {
                        "model_store": first.model_store_address,
                        "coordinator": first.coordinator_address,
                        "reputation": self.reputation_address,
                        "addresses": dict(self.addresses),
                    },
                }
                for handle in self.handles
            }
        )

    def run(self) -> list[PeerRoundLog]:
        self._ensure_runtime()
        try:
            logs = super().run()
            self._collect_exports()
            self._collect_stats()
        except BaseException:
            self.broker.terminate()
            self.handles = []
            raise
        self._shutdown()
        return logs

    def _collect_exports(self) -> None:
        groups = self._by_owner(
            [peer_id for peer_id in self.peer_ids if peer_id in self.peers]
        )
        results = self._run_tasks(
            {
                index: {"op": "export", "params": {"peers": peer_ids}}
                for index, peer_ids in groups.items()
            }
        )
        for value, blobs in results.values():
            for peer_id, payload in zip(value, blobs):
                self._exports[peer_id] = payload

    def _collect_stats(self) -> None:
        results = self._run_tasks(
            {handle.index: {"op": "stats", "params": {}} for handle in self.handles}
        )
        self._worker_stats = [
            results[handle.index][0] for handle in self.handles
        ]

    def _shutdown(self) -> None:
        self._run_tasks(
            {handle.index: {"op": "shutdown", "params": {}} for handle in self.handles}
        )
        self.broker.reap()
        self.handles = []

    def crash_worker(self, index: int) -> None:
        """Test hook: make worker ``index`` die mid-protocol.

        The worker ``os._exit``\\ s without a goodbye; the next recv on
        its channel raises, which this method surfaces as the
        :class:`WorkerCrashedError` the resilience path expects.
        """
        self._ensure_runtime()
        handle = self.handles[index]
        handle.channel.send({"kind": "task", "op": "crash", "params": {}})
        try:
            handle.channel.recv()
        except (WireClosedError, OSError) as exc:
            raise WorkerCrashedError(
                f"worker {index} crashed (exit code {handle.process.wait(timeout=30)})"
            ) from exc
        raise WireProtocolError(f"worker {index} survived a crash task")

    # -- round seams -------------------------------------------------------

    def _train_cohort(self, live: list[str], round_id: int) -> dict[str, tuple]:
        results = self._run_tasks(
            {
                index: {"op": "train", "params": {"round": round_id, "peers": peer_ids}}
                for index, peer_ids in self._by_owner(live).items()
            }
        )
        trained: dict[str, tuple] = {}
        for value, _blobs in results.values():
            for entry in value:
                trained[entry["peer"]] = (
                    Transaction.from_dict(entry["tx"]),
                    float(entry["duration"]),
                )
        return trained

    def _fetch_view(self, peer_id: str, round_id: int) -> list[_UpdateStub]:
        # The coordinator-side read mirrors the worker's upcoming fetch:
        # same visible submissions, filtered to blobs already off-chain.
        peer = self.peers[peer_id]
        return [
            _UpdateStub(self.id_of_address.get(record["author"], record["author"]))
            for record in peer.visible_submissions(round_id)
            if record["weights_hash"] in self.offchain
        ]

    def _personalized_round(
        self, round_id: int, survivors: list[str], updates_by_view: dict
    ) -> list[PeerRoundLog]:
        results = self._run_tasks(
            {
                index: {"op": "score", "params": {"round": round_id, "peers": peer_ids}}
                for index, peer_ids in self._by_owner(survivors).items()
            }
        )
        payloads: dict[str, dict] = {}
        for value, _blobs in results.values():
            for entry in value:
                payloads[entry["peer"]] = entry
        return [
            self._log_from_payload(round_id, payloads[peer_id])
            for peer_id in survivors
        ]

    @staticmethod
    def _log_from_payload(round_id: int, entry: dict) -> PeerRoundLog:
        log = PeerRoundLog(peer_id=entry["peer"], round_id=round_id)
        for label, accuracy in entry["table"]:
            log.combination_accuracy[label] = accuracy
        log.chosen_combination = tuple(entry["chosen"])
        log.chosen_accuracy = entry["accuracy"]
        log.models_used = entry["models_used"]
        log.updates_visible = entry["updates_visible"]
        return log

    def _global_vote_round(
        self, round_id: int, updates_by_view: dict
    ) -> list[PeerRoundLog]:
        voters = [peer_id for peer_id in self.peer_ids if peer_id in updates_by_view]
        # Votes go out one voter at a time, in cohort order: each vote
        # submits a transaction through the served gateway, and mempool
        # arrival order must match the in-process loop exactly.
        for peer_id in voters:
            self._run_task(
                self._owner[peer_id], "vote", {"round": round_id, "peer": peer_id}
            )

        def finalized_everywhere() -> bool:
            return all(
                peer.gateway.call(
                    peer.coordinator_address, "finalized_hash", round_id=round_id
                )
                is not None
                for peer in (self.peers[peer_id] for peer_id in voters)
            )

        self._wait_until(finalized_everywhere, f"round {round_id} finalization")

        return [
            self._log_from_payload(
                round_id,
                self._run_task(
                    self._owner[peer_id],
                    "adopt_final",
                    {"round": round_id, "peer": peer_id},
                )[0],
            )
            for peer_id in voters
        ]

    def _catch_up_peer(self, peer_id: str, fetch_round: int) -> int:
        # The rejoining peer's model lives with its worker, so the FedAvg
        # catch-up adoption runs there; the chain-side heal/partition and
        # head-hash wait already happened coordinator-side.
        value, _blobs = self._run_task(
            self._owner[peer_id], "catch_up", {"round": fetch_round, "peer": peer_id}
        )
        return int(value)

    def _rate_round(self, round_id: int, updates_by_view: dict) -> None:
        # One rater at a time, cohort order — rating transactions must
        # hit the mempool in the same order as the in-process pass.
        for rater_id in self.peer_ids:
            if rater_id in updates_by_view:
                self._run_task(
                    self._owner[rater_id], "rate", {"round": round_id, "peer": rater_id}
                )

    # -- reporting ---------------------------------------------------------

    def export_model_bytes(self, peer_id: str) -> bytes:
        payload = self._exports.get(peer_id)
        if payload is None:
            raise ConfigError(
                f"{peer_id}: no exported model (multiprocess exports are "
                "collected when run() completes)"
            )
        return payload

    def gateway_stats(self) -> dict:
        payload = super().gateway_stats()
        if not self._worker_stats:
            return payload
        wire_trips = 0
        wire_seconds = 0.0
        method_seconds: dict = {}
        workers = []
        for stats in self._worker_stats:
            wire = stats["wire"]
            wire_trips += wire["rpc_round_trips"]
            wire_seconds += stats["wire_seconds"]
            _merge_numbers(method_seconds, stats["wire_method_seconds"])
            # The ledger-side transport aggregate gains the wire counters
            # its in-process layers cannot see (theirs are all zero).
            for field in ("wire_bytes_sent", "wire_bytes_received", "rpc_round_trips"):
                payload["transport"][field] += wire[field]
            workers.append(
                {
                    "worker": stats["worker"],
                    "peers": stats["peers"],
                    "requested": stats["requested"],
                    "wire": wire,
                    "channel": stats["channel"],
                }
            )
        # Channel totals come from the broker's handles, which outlive
        # the shutdown handshake (closed sockets keep their counters).
        payload["wire"] = {
            "workers": self.num_workers,
            "bytes_sent": sum(h.channel.bytes_sent for h in self.broker.handles),
            "bytes_received": sum(h.channel.bytes_received for h in self.broker.handles),
            "rpc_round_trips": wire_trips,
            "seconds": wire_seconds,
            "method_seconds": method_seconds,
        }
        payload["worker_stats"] = workers
        payload["runtime"] = "multiprocess"
        return payload
