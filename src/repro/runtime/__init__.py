"""Out-of-process cohort runtime: the ledger served over a local wire.

The package splits the decentralized deployment across OS processes
without changing a single result byte:

* :mod:`~repro.runtime.wire` — length-prefixed JSON+blob frames, the
  typed-error codec, and :class:`WireCondition` (declarative ``wait_for``
  predicates that rebuild server-side);
* :mod:`~repro.runtime.gateway` — :class:`RemoteGateway` /
  :class:`RemoteOffchain`, the worker-side
  :class:`~repro.chain.gateway.ChainGateway` implementation (stackable
  under the batching/resilience decorators like any other backend);
* :mod:`~repro.runtime.server` — :class:`GatewayServer`, the
  coordinator-side dispatcher answering one RPC frame at a time;
* :mod:`~repro.runtime.broker` / :mod:`~repro.runtime.worker` /
  :mod:`~repro.runtime.coordinator` — the process trio.  These are
  imported by dotted path (``repro.runtime.coordinator``), not re-
  exported here: the coordinator pulls in the scenario layer, which
  lazily imports back into this package, and keeping the package root
  light breaks that cycle.

Select the runtime per scenario via ``ScenarioSpec.runtime``
(``"inprocess"`` | ``"multiprocess"``) and ``runtime_workers``.
"""

from repro.runtime.gateway import RemoteGateway, RemoteOffchain
from repro.runtime.server import GatewayServer
from repro.runtime.speccodec import decode_spec, encode_spec
from repro.runtime.wire import (
    WIRE_ERROR_TYPES,
    WireChannel,
    WireClosedError,
    WireCondition,
    connect,
    decode_error,
    decode_frame,
    encode_error,
    encode_frame,
)

__all__ = [
    "WIRE_ERROR_TYPES",
    "GatewayServer",
    "RemoteGateway",
    "RemoteOffchain",
    "WireChannel",
    "WireClosedError",
    "WireCondition",
    "connect",
    "decode_error",
    "decode_frame",
    "decode_spec",
    "encode_error",
    "encode_frame",
    "encode_spec",
]
