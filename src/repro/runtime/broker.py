"""Worker-process lifecycle: spawn, pin, connect back, terminate.

The broker turns ``runtime_workers`` into OS processes running
``python -m repro.runtime.worker``, each of which dials the coordinator's
loopback listener and announces itself with one ``hello`` frame.  Workers
are pinned to cores best-effort (``os.sched_setaffinity`` where the
platform has it, worker ``i`` to core ``i % cores``) so a 4-worker cohort
on a 4-core box actually trains on four cores instead of thrashing one.

The broker owns *processes only*.  Task dispatch, RPC serving, and the
shutdown handshake live with the coordinator
(:class:`~repro.runtime.coordinator.MultiprocessDecentralizedFL`); the
broker's job ends at handing back connected
:class:`WorkerHandle` triples and, later, making the processes go away —
gracefully after a goodbye (:meth:`Broker.reap`) or forcibly on the error
path (:meth:`Broker.terminate`).
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.errors import WireProtocolError, WorkerCrashedError
from repro.runtime.wire import WireChannel

#: Seconds a freshly spawned worker gets to dial back before the launch
#: is declared failed (the first import pays for numpy and the library).
CONNECT_TIMEOUT = 120.0


@dataclass
class WorkerHandle:
    """One live worker process and its coordinator-side channel."""

    index: int
    process: subprocess.Popen
    channel: WireChannel


def _worker_env() -> dict[str, str]:
    """Child environment with the library's source root importable."""
    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
    return env


def _pin_to_core(pid: int, index: int) -> None:
    """Best-effort: pin worker ``index`` to core ``index % cores``."""
    setaffinity = getattr(os, "sched_setaffinity", None)
    cores = os.cpu_count()
    if setaffinity is None or not cores:  # pragma: no cover - platform-dependent
        return
    try:
        setaffinity(pid, {index % cores})
    except OSError:  # pragma: no cover - platform-dependent
        pass


class Broker:
    """Spawns the worker cohort and owns its process lifecycle."""

    def __init__(self, workers: int, connect_timeout: float = CONNECT_TIMEOUT) -> None:
        if workers < 1:
            raise WireProtocolError(f"broker needs at least one worker, got {workers}")
        self.workers = workers
        self.connect_timeout = connect_timeout
        self.handles: list[WorkerHandle] = []

    def launch(self) -> list[WorkerHandle]:
        """Spawn every worker and wait for all of them to dial back."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        processes: list[subprocess.Popen] = []
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(self.workers)
            port = listener.getsockname()[1]
            env = _worker_env()
            for index in range(self.workers):
                process = subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.runtime.worker",
                        "--connect",
                        f"127.0.0.1:{port}",
                        "--worker",
                        str(index),
                    ],
                    env=env,
                )
                _pin_to_core(process.pid, index)
                processes.append(process)
            handles = self._accept_all(listener, processes)
        except BaseException:
            self._terminate_processes(processes)
            raise
        finally:
            listener.close()
        self.handles = handles
        return self.handles

    def _accept_all(
        self, listener: socket.socket, processes: list[subprocess.Popen]
    ) -> list[WorkerHandle]:
        handles: list[Optional[WorkerHandle]] = [None] * self.workers
        listener.settimeout(1.0)
        polls_left = max(int(self.connect_timeout), 1)
        while any(handle is None for handle in handles):
            try:
                sock, _addr = listener.accept()
            except socket.timeout:
                for index, process in enumerate(processes):
                    if handles[index] is None and process.poll() is not None:
                        raise WorkerCrashedError(
                            f"worker {index} exited with code "
                            f"{process.returncode} before connecting"
                        )
                polls_left -= 1
                if polls_left <= 0:
                    raise WorkerCrashedError(
                        f"workers failed to connect within {self.connect_timeout:.0f}s"
                    )
                continue
            channel = WireChannel(sock)
            header, _blobs, _size = channel.recv()
            if header.get("kind") != "hello" or "worker" not in header:
                raise WireProtocolError(
                    f"expected a hello frame, got {header.get('kind')!r}"
                )
            index = int(header["worker"])
            if not 0 <= index < self.workers or handles[index] is not None:
                raise WireProtocolError(f"hello from unexpected worker index {index}")
            handles[index] = WorkerHandle(index, processes[index], channel)
        return [handle for handle in handles if handle is not None]

    # -- teardown ----------------------------------------------------------

    def reap(self) -> None:
        """Join workers after a clean shutdown handshake."""
        for handle in self.handles:
            handle.channel.close()
        for handle in self.handles:
            try:
                handle.process.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                handle.process.kill()
                handle.process.wait(timeout=30)

    def terminate(self) -> None:
        """Force-stop every worker (error path; no goodbye frames)."""
        for handle in self.handles:
            handle.channel.close()
        self._terminate_processes([handle.process for handle in self.handles])

    @staticmethod
    def _terminate_processes(processes: list[subprocess.Popen]) -> None:
        for process in processes:
            if process.poll() is None:
                process.terminate()
        for process in processes:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                process.kill()
                process.wait(timeout=10)
