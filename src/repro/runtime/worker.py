"""Worker process: owns a shard of the cohort's models, knows no ledger.

Launched as ``python -m repro.runtime.worker --connect HOST:PORT
--worker INDEX`` by the broker.  The worker dials the coordinator, says
``hello``, then serves tasks one at a time: ``init`` rebuilds its shard
of peers from the :class:`~repro.scenarios.spec.ScenarioSpec` (datasets,
models, rng streams all re-derived locally — nothing heavyweight crosses
the wire), and the round ops (``train`` / ``score`` / ``rate`` /
``vote`` / ``adopt_final``) execute exactly the per-peer seam functions
the in-process driver calls, against the same named rng streams.

Every ledger touch goes through :class:`~repro.runtime.gateway
.RemoteGateway` / :class:`~repro.runtime.gateway.RemoteOffchain` on the
task channel — the worker holds no :class:`~repro.chain.node.Node`, no
simulator, and never re-seeds from pid or wall clock, which is what
makes a multiprocess run byte-identical to the in-process one.

Determinism contract (why sharding cannot change results):

* peer ``rng`` streams are ``chain.get("peer", peer_id)`` — derived
  from (seed, label), not from draw order, so a peer's draws are the
  same no matter which worker owns it or what its siblings do;
* model init uses one shared ``model-init`` seed drawn coordinator- and
  worker-side at the same point of the same stream recipe;
* submissions never happen here — train tasks *return* signed
  transactions and the coordinator broadcasts them on the event engine,
  so mempool order is scheduler-controlled, not process-race-controlled.
"""

from __future__ import annotations

import argparse
import os
import sys
import traceback
from typing import Optional

from repro.chain.crypto import KeyPair
from repro.chain.gateway import BatchingGateway, GatewayStats
from repro.errors import (
    GatewayError,
    NetworkError,
    SerializationError,
    WireProtocolError,
)
from repro.nn.serialize import weights_to_bytes
from repro.runtime.gateway import HeadSignal, RemoteGateway, RemoteOffchain
from repro.runtime.wire import WireChannel, WireClosedError, connect, encode_error
from repro.utils.rng import RngFactory

#: Errors a task handler may raise as part of normal protocol operation;
#: they cross the wire typed.  Anything else is a worker bug and crosses
#: as a generic :class:`GatewayError` (with the traceback on stderr).
_TASK_SAFE_ERRORS = (GatewayError, SerializationError, NetworkError)


def _log_payload(log) -> dict:
    """Wire form of a :class:`~repro.core.decentralized.PeerRoundLog`.

    The accuracy table ships as an ordered ``[label, accuracy]`` pair
    list: canonical JSON sorts dict keys, and the table's insertion
    order (enumeration order of the combination search) must survive
    the trip for report output to stay byte-identical.
    """
    return {
        "peer": log.peer_id,
        "table": [[label, acc] for label, acc in log.combination_accuracy.items()],
        "chosen": list(log.chosen_combination),
        "accuracy": log.chosen_accuracy,
        "models_used": log.models_used,
        "updates_visible": log.updates_visible,
    }


class WorkerRuntime:
    """Task loop for one worker process."""

    def __init__(self, channel: WireChannel, index: int) -> None:
        self.channel = channel
        self.index = index
        self.config = None
        self.peers: dict[str, object] = {}
        self.transports: dict[str, RemoteGateway] = {}
        self.engines: dict[str, object] = {}
        self._offchain_stats = GatewayStats()
        self.offchain = RemoteOffchain(channel, stats=self._offchain_stats)
        self.head_signal = HeadSignal()
        self.reputation_address: Optional[str] = None
        self.addresses: dict[str, str] = {}
        self.id_of: dict[str, str] = {}
        self._views: dict[tuple[int, str], list] = {}
        self._cleared_round: Optional[int] = None

    # -- serve loop --------------------------------------------------------

    def serve(self) -> None:
        """Receive tasks until ``shutdown`` (or the channel closes)."""
        while True:
            header, blobs, _size = self.channel.recv()
            if header.get("kind") != "task":
                self.channel.send(
                    {
                        "kind": "result",
                        "error": encode_error(
                            WireProtocolError(
                                f"worker expected a task frame, got {header.get('kind')!r}"
                            )
                        ),
                    }
                )
                continue
            stamp = header.get("head")
            if stamp is not None:
                # The coordinator's per-task head push; exact until the
                # next wait_for pumps the chain (see HeadSignal).
                self.head_signal.value = (str(stamp["hash"]), float(stamp["now"]))
            op = header.get("op", "")
            if op == "shutdown":
                self.channel.send({"kind": "result", "value": "bye"})
                return
            if op == "crash":
                # Test hook: die without a goodbye, as a real fault would.
                os._exit(13)
            try:
                value, out_blobs = self.dispatch(op, header.get("params", {}), blobs)
            except _TASK_SAFE_ERRORS as exc:
                self.channel.send({"kind": "result", "error": encode_error(exc)})
            except Exception as exc:
                traceback.print_exc(file=sys.stderr)
                self.channel.send(
                    {
                        "kind": "result",
                        "error": encode_error(
                            GatewayError(f"worker {self.index} {op} failed: {exc!r}")
                        ),
                    }
                )
            else:
                self.channel.send({"kind": "result", "value": value}, out_blobs)

    def dispatch(self, op: str, params: dict, blobs: tuple) -> tuple:
        """Route one task; returns ``(value, blobs)`` for the result frame."""
        handlers = {
            "init": self._init,
            "configure": self._configure,
            "train": self._train,
            "score": self._score,
            "rate": self._rate,
            "vote": self._vote,
            "adopt_final": self._adopt_final,
            "catch_up": self._catch_up,
            "export": self._export,
            "stats": self._stats,
            "ping": lambda params: "pong",
        }
        handler = handlers.get(op)
        if handler is None:
            raise WireProtocolError(f"unknown worker task op {op!r}")
        value = handler(params)
        if isinstance(value, tuple):
            return value
        return value, ()

    # -- lifecycle tasks ---------------------------------------------------

    def _init(self, params: dict):
        # Imported lazily: the scenario runner imports this package back
        # (repro.runtime.coordinator) for the multiprocess dispatch.
        from repro.core.participation import ParticipationPlan
        from repro.fl.scoring import CombinationEngine
        from repro.core.peer import FullPeer
        from repro.runtime.speccodec import decode_spec
        from repro.scenarios.runner import ScenarioContext, decentralized_inputs

        spec = decode_spec(params["spec"])
        workers = int(params["workers"])
        rngs = RngFactory(spec.seed)
        inputs = decentralized_inputs(spec, rngs, ScenarioContext())
        self.config = inputs.config
        chain = rngs.spawn("chain")
        # Same plan the coordinator resolved: both sides derive it from the
        # chain-spawned participation/* streams, so they agree on exactly
        # which identities are ever materialized.
        plan = ParticipationPlan(
            inputs.config.participation,
            [pc.peer_id for pc in inputs.peer_configs],
            inputs.config.rounds,
            chain,
        )
        for position, pc in enumerate(inputs.peer_configs):
            if position % workers != self.index:
                continue
            if pc.peer_id not in plan.ever_active:
                continue  # registered on chain, never trains: no peer here
            transport = RemoteGateway(
                self.channel,
                pc.peer_id,
                default_deadline=inputs.config.max_round_time,
                head_signal=self.head_signal,
            )
            gateway = (
                BatchingGateway(transport, staleness=inputs.config.gateway_staleness)
                if inputs.config.gateway == "batching"
                else transport
            )
            peer = FullPeer(
                config=pc,
                keypair=KeyPair.from_seed(f"peer-{pc.peer_id}"),
                gateway=gateway,
                offchain=self.offchain,
                train_set=inputs.train_sets[pc.peer_id],
                test_set=inputs.test_sets[pc.peer_id],
                model_builder=inputs.model_builder,
                rng=chain.get("peer", pc.peer_id),
                attack_rng=(
                    chain.get("attack", pc.peer_id) if pc.attacker is not None else None
                ),
            )
            self.peers[pc.peer_id] = peer
            self.transports[pc.peer_id] = transport
            if inputs.config.scoring == "engine":
                self.engines[pc.peer_id] = CombinationEngine(
                    peer.client.model, peer.client.test_set
                )
        return sorted(self.peers)

    def _configure(self, params: dict):
        for peer in self.peers.values():
            peer.model_store_address = params["model_store"]
            peer.coordinator_address = params["coordinator"]
        self.reputation_address = params["reputation"]
        self.addresses = dict(params["addresses"])
        self.id_of = {address: pid for pid, address in self.addresses.items()}
        return "configured"

    # -- round state -------------------------------------------------------

    def _begin_round(self, round_id: int) -> None:
        """Reset per-round memos on the first task of a new round.

        The engine caches are content-addressed, so clearing is purely a
        memory bound — never a correctness requirement."""
        if round_id == self._cleared_round:
            return
        self._cleared_round = round_id
        self._views.clear()
        for engine in self.engines.values():
            engine.cache.clear()

    def _fetch(self, peer_id: str, round_id: int) -> list:
        key = (round_id, peer_id)
        if key not in self._views:
            self._views[key] = self.peers[peer_id].fetch_updates(round_id, self.id_of)
        return self._views[key]

    def _use_greedy(self, n_updates: int) -> bool:
        if self.config.selection == "greedy":
            return True
        return (
            self.config.selection == "auto"
            and n_updates > self.config.exhaustive_limit
        )

    # -- round tasks -------------------------------------------------------

    def _train(self, params: dict):
        round_id = int(params["round"])
        self._begin_round(round_id)
        out = []
        for peer_id in params["peers"]:
            peer = self.peers[peer_id]
            _update, tx = peer.train_and_commit(round_id)
            out.append(
                {
                    "peer": peer_id,
                    "tx": tx.to_dict(),
                    "duration": peer.sample_training_time(),
                }
            )
        return out

    def _score(self, params: dict):
        from repro.core.decentralized import adopt_choice, choose_combination

        round_id = int(params["round"])
        self._begin_round(round_id)
        out = []
        for peer_id in params["peers"]:
            peer = self.peers[peer_id]
            updates = self._fetch(peer_id, round_id)
            scored, chosen = choose_combination(
                peer, self.engines.get(peer_id), updates, self._use_greedy(len(updates))
            )
            log = adopt_choice(peer, round_id, updates, scored, chosen)
            out.append(_log_payload(log))
        return out

    def _rate(self, params: dict):
        from repro.core.decentralized import rate_visible_updates

        round_id = int(params["round"])
        self._begin_round(round_id)
        peer_id = params["peer"]
        rate_visible_updates(
            self.peers[peer_id],
            self.engines.get(peer_id),
            self._fetch(peer_id, round_id),
            round_id,
            self.reputation_address,
            lambda pid: self.addresses[pid],
            self.config.reputation_fitness_margin,
        )
        return "rated"

    def _vote(self, params: dict):
        from repro.core.decentralized import submit_global_vote

        round_id = int(params["round"])
        self._begin_round(round_id)
        peer_id = params["peer"]
        submit_global_vote(
            self.peers[peer_id], self._fetch(peer_id, round_id), round_id, self.offchain
        )
        return "voted"

    def _adopt_final(self, params: dict):
        from repro.core.decentralized import adopt_global_model

        round_id = int(params["round"])
        peer_id = params["peer"]
        log = adopt_global_model(
            self.peers[peer_id], self._fetch(peer_id, round_id), round_id, self.offchain
        )
        return _log_payload(log)

    def _catch_up(self, params: dict):
        from repro.fl.aggregation import fedavg

        fetch_round = int(params["round"])
        peer = self.peers[params["peer"]]
        # Deliberately NOT the per-round view memo: the rejoining peer may
        # have fetched (an empty view of) this round while partitioned, and
        # catch-up must see the healed chain.
        updates = peer.fetch_updates(fetch_round, self.id_of)
        if updates:
            peer.adopt(fedavg(updates))
        return len(updates)

    # -- collection tasks --------------------------------------------------

    def _export(self, params: dict):
        peer_ids = list(params["peers"])
        blobs = tuple(
            weights_to_bytes(self.peers[peer_id].client.model.get_weights())
            for peer_id in peer_ids
        )
        return peer_ids, blobs

    def _stats(self, params: dict):
        requested = GatewayStats()
        for peer in self.peers.values():
            requested.add(peer.gateway.stats)
        wire = GatewayStats()
        for transport in self.transports.values():
            wire.add(transport.stats)
        wire.add(self._offchain_stats)
        return {
            "worker": self.index,
            "peers": sorted(self.peers),
            "requested": requested.as_dict(),
            "wire": wire.as_dict(),
            "wire_seconds": wire.wire_seconds,
            "wire_method_seconds": dict(wire.wire_method_seconds),
            "channel": {
                "bytes_sent": self.channel.bytes_sent,
                "bytes_received": self.channel.bytes_received,
            },
        }


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="repro cohort worker process")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT")
    parser.add_argument("--worker", required=True, type=int)
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    channel = connect(host, int(port))
    try:
        channel.send({"kind": "hello", "worker": args.worker})
        WorkerRuntime(channel, args.worker).serve()
    except WireClosedError:
        # Coordinator went away mid-task; nothing left to serve.
        return 0
    finally:
        channel.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
