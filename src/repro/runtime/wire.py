"""Wire codec and framing for the out-of-process runtime.

One frame = a 4-byte big-endian header length, a canonical-JSON header
(:func:`~repro.utils.serialization.canonical_dumps` — the same sorted-key
codec transactions hash over, so floats and bytes round-trip exactly), and
zero or more raw binary blobs whose lengths the header declares under
``"blobs"``.  Small byte fields (transaction data, hashes) ride the JSON
as tagged base64; *weight payloads* always travel as codec-v2 blobs so a
50-peer round never base64-inflates megabytes of float32.

The module also owns the two cross-process vocabularies the golden-file
tests pin:

* the **typed-error registry** — every :class:`~repro.errors.GatewayError`
  subtype crosses the boundary as ``{"type": <class name>, "message"}``
  and is re-raised client-side as the same class with the same message;
* :class:`WireCondition` — the declarative ``wait_for`` predicates
  (arbitrary callables cannot cross a process boundary without pickling,
  which the wire-discipline lint forbids).

Framing violations raise :class:`~repro.errors.WireProtocolError`; a peer
hanging up mid-frame raises :class:`WireClosedError` so the coordinator
can surface it as a typed :class:`~repro.errors.WorkerCrashedError`.
"""

from __future__ import annotations

import socket
import struct
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import (
    CallRevertedError,
    ConfigError,
    GatewayError,
    GatewayTimeoutError,
    GatewayUnavailableError,
    NetworkError,
    RoundError,
    SerializationError,
    TransactionRejectedError,
    TransientGatewayError,
    UnknownContractError,
    UnknownMethodError,
    WireProtocolError,
    WorkerCrashedError,
)
from repro.utils.serialization import canonical_dumps, canonical_loads

#: Sanity ceiling on a single frame header (1 MiB) and blob (1 GiB); a
#: larger declared length means corruption or version skew, not data.
MAX_HEADER_BYTES = 1 << 20
MAX_BLOB_BYTES = 1 << 30

_LEN = struct.Struct(">I")


class WireClosedError(ConnectionError):
    """The peer closed the socket (EOF) before a complete frame arrived."""


# ---------------------------------------------------------------------------
# Frame codec (pure bytes <-> header/blobs; no sockets)
# ---------------------------------------------------------------------------


def encode_frame(header: dict, blobs: tuple[bytes, ...] = ()) -> bytes:
    """Serialize one frame to bytes.

    ``header`` must be canonical-JSON encodable; ``blobs`` are appended
    raw and their lengths recorded in the header's ``"blobs"`` key.
    """
    if "blobs" in header:
        raise WireProtocolError("frame header key 'blobs' is reserved for the codec")
    payload = dict(header)
    payload["blobs"] = [len(blob) for blob in blobs]
    head = canonical_dumps(payload)
    if len(head) > MAX_HEADER_BYTES:
        raise WireProtocolError(f"frame header too large ({len(head)} bytes)")
    return b"".join((_LEN.pack(len(head)), head, *blobs))


def decode_frame(data: bytes) -> tuple[dict, tuple[bytes, ...]]:
    """Inverse of :func:`encode_frame`; validates every declared length."""
    if len(data) < _LEN.size:
        raise WireProtocolError("truncated frame: missing length prefix")
    (head_len,) = _LEN.unpack_from(data)
    if head_len > MAX_HEADER_BYTES:
        raise WireProtocolError(f"declared header length {head_len} exceeds limit")
    offset = _LEN.size
    if len(data) < offset + head_len:
        raise WireProtocolError("truncated frame: incomplete header")
    header, blobs, offset = _decode_header(data[offset : offset + head_len]), [], offset + head_len
    for length in header.pop("blobs"):
        if len(data) < offset + length:
            raise WireProtocolError("truncated frame: incomplete blob")
        blobs.append(data[offset : offset + length])
        offset += length
    if offset != len(data):
        raise WireProtocolError(f"frame has {len(data) - offset} undeclared trailing bytes")
    return header, tuple(blobs)


def _decode_header(raw: bytes) -> dict:
    try:
        header = canonical_loads(raw)
    except SerializationError as exc:
        raise WireProtocolError(f"unparseable frame header: {exc}") from exc
    if not isinstance(header, dict) or "kind" not in header:
        raise WireProtocolError("frame header must be an object with a 'kind'")
    lengths = header.get("blobs")
    if not isinstance(lengths, list) or not all(
        isinstance(n, int) and 0 <= n <= MAX_BLOB_BYTES for n in lengths
    ):
        raise WireProtocolError("frame header declares invalid blob lengths")
    return header


# ---------------------------------------------------------------------------
# Socket channel
# ---------------------------------------------------------------------------


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise WireClosedError(f"connection closed with {remaining} bytes outstanding")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class WireChannel:
    """One framed, full-duplex connection with byte accounting.

    The worker and coordinator each hold one channel per connection; all
    RPC and task traffic for that worker flows through it, so the byte
    counters are the true wire volume (tasks, reads, and weight blobs).
    """

    def __init__(self, sock: socket.socket) -> None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            # Not a TCP socket (e.g. a Unix socketpair in tests) — the
            # option only matters for loopback TCP latency anyway.
            pass
        self.sock = sock
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, header: dict, blobs: tuple[bytes, ...] = ()) -> int:
        """Send one frame; returns its size in bytes."""
        frame = encode_frame(header, blobs)
        self.sock.sendall(frame)
        self.bytes_sent += len(frame)
        return len(frame)

    def recv(self) -> tuple[dict, tuple[bytes, ...], int]:
        """Receive one frame; returns (header, blobs, frame size)."""
        prefix = _recv_exact(self.sock, _LEN.size)
        (head_len,) = _LEN.unpack(prefix)
        if head_len > MAX_HEADER_BYTES:
            raise WireProtocolError(f"declared header length {head_len} exceeds limit")
        header = _decode_header(_recv_exact(self.sock, head_len))
        blobs = tuple(_recv_exact(self.sock, length) for length in header.pop("blobs"))
        size = _LEN.size + head_len + sum(len(blob) for blob in blobs)
        self.bytes_received += size
        return header, blobs, size

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Typed-error registry
# ---------------------------------------------------------------------------

#: Every error class allowed to cross the wire, by class name.  The golden
#: wire-format tests iterate this registry, so adding an entry (or a new
#: GatewayError subtype) without regenerating the fixtures fails loudly.
WIRE_ERROR_TYPES: dict[str, type[Exception]] = {
    cls.__name__: cls
    for cls in (
        GatewayError,
        UnknownContractError,
        UnknownMethodError,
        CallRevertedError,
        TransactionRejectedError,
        GatewayTimeoutError,
        TransientGatewayError,
        GatewayUnavailableError,
        WorkerCrashedError,
        WireProtocolError,
        SerializationError,
        NetworkError,
        RoundError,
        ConfigError,
    )
}


def encode_error(exc: Exception) -> dict:
    """Encode an exception for the wire, preserving type and message."""
    name = type(exc).__name__
    if name not in WIRE_ERROR_TYPES:
        name = "GatewayError"
    return {"type": name, "message": str(exc)}


def decode_error(payload: dict) -> Exception:
    """Rebuild the typed exception an :func:`encode_error` frame carries.

    Unknown type names degrade to a plain :class:`GatewayError` that keeps
    the original name in the message — version skew stays diagnosable.
    """
    name = payload.get("type", "")
    message = payload.get("message", "")
    cls = WIRE_ERROR_TYPES.get(name)
    if cls is None:
        return GatewayError(f"{name or 'unknown remote error'}: {message}")
    return cls(message)


# ---------------------------------------------------------------------------
# Declarative wait_for conditions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WireCondition:
    """A ``wait_for`` predicate that can cross the process boundary.

    The in-process gateway accepts arbitrary callables; a callable cannot
    travel the wire without pickling, so remote waits are restricted to
    this declarative vocabulary and rebuilt into a predicate server-side
    against the routed gateway.
    """

    kind: str  # "height_at_least" | "contract_deployed" | "never"
    value: Any = None

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    @classmethod
    def from_dict(cls, payload: dict) -> "WireCondition":
        return cls(kind=payload["kind"], value=payload.get("value"))

    def build(self, gateway: Any) -> Callable[[], bool]:
        """Compile into a zero-argument predicate over ``gateway``."""
        if self.kind == "height_at_least":
            target = int(self.value)
            return lambda: gateway.height() >= target
        if self.kind == "contract_deployed":
            address = str(self.value)
            return lambda: gateway.has_contract(address)
        if self.kind == "never":
            return lambda: False
        raise WireProtocolError(f"unknown wait condition kind {self.kind!r}")


def connect(host: str, port: int, timeout: Optional[float] = None) -> WireChannel:
    """Dial the coordinator and wrap the socket in a channel."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    return WireChannel(sock)
