"""Combination selection — the paper's "consider" aggregation.

Section III: each peer holds a private test set, evaluates every received
model (or combination of models), filters out those below a fitness
threshold, and aggregates the best-scoring combination.  With three peers
there are seven non-empty subsets; the experiment tables enumerate the five
the paper reports (self, the two pairs containing self, the other pair, and
all three).

For larger cohorts exhaustive enumeration explodes, so
``greedy_combination`` implements forward selection — the paper's
future-work question about "the impact of an arbitrary number of local
updates" made concrete.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations as iter_combinations
from typing import Callable, Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import SelectionError
from repro.fl.aggregation import ModelUpdate, fedavg
from repro.fl.evaluation import evaluate_weights
from repro.nn.model import Sequential


@dataclass
class CombinationResult:
    """Score of one aggregated subset of updates."""

    members: tuple[str, ...]
    accuracy: float
    weights: dict[str, np.ndarray]

    @property
    def label(self) -> str:
        """Human-readable combination label, e.g. ``"A,B,C"``."""
        return ",".join(self.members)


Aggregator = Callable[[Sequence[ModelUpdate]], dict[str, np.ndarray]]


def pick_best(results: Sequence, rng: Optional[np.random.Generator] = None):
    """Select the winner from results sorted by ``(-accuracy, members)``.

    The paper notes that when several combinations tie, "the device
    selects one of them randomly".  This is the single tie-break used by
    :func:`best_combination`, the decentralized orchestrator, and the
    scoring engine, so they all consume the RNG identically: exactly one
    ``integers(0, len(tied))`` draw when more than one combination ties
    for the top accuracy, and no draw otherwise (the lexicographically
    first winner stands).  ``results`` may be any sequence of objects
    with ``accuracy`` and ``members`` attributes.
    """
    top_acc = results[0].accuracy
    tied = [result for result in results if result.accuracy == top_acc]
    if rng is not None and len(tied) > 1:
        return tied[int(rng.integers(0, len(tied)))]
    return tied[0]


def enumerate_combinations(
    updates: Sequence[ModelUpdate],
    model: Sequential,
    test_set: Dataset,
    min_size: int = 1,
    max_size: Optional[int] = None,
    aggregator: Aggregator = fedavg,
) -> list[CombinationResult]:
    """Score every subset of ``updates`` with ``min_size <= |S| <= max_size``.

    Results are sorted by (accuracy desc, members asc) so ties break
    deterministically.
    """
    if not updates:
        raise SelectionError("no updates to combine")
    if min_size < 1:
        raise SelectionError(f"min_size must be >= 1, got {min_size}")
    limit = max_size if max_size is not None else len(updates)
    results: list[CombinationResult] = []
    ordered = sorted(updates, key=lambda update: update.client_id)
    for size in range(min_size, min(limit, len(ordered)) + 1):
        for subset in iter_combinations(ordered, size):
            weights = aggregator(subset)
            acc = evaluate_weights(model, weights, test_set)
            results.append(
                CombinationResult(
                    members=tuple(update.client_id for update in subset),
                    accuracy=acc,
                    weights=weights,
                )
            )
    results.sort(key=lambda result: (-result.accuracy, result.members))
    return results


def best_combination(
    updates: Sequence[ModelUpdate],
    model: Sequential,
    test_set: Dataset,
    rng: Optional[np.random.Generator] = None,
    aggregator: Aggregator = fedavg,
) -> CombinationResult:
    """The "consider" aggregator: best-scoring subset on the local test set.

    The paper notes that when several combinations tie, "the device selects
    one of them randomly" — pass ``rng`` to reproduce that; without it, the
    lexicographically-first tied combination wins.
    """
    results = enumerate_combinations(updates, model, test_set, aggregator=aggregator)
    return pick_best(results, rng)


def threshold_filter(
    updates: Sequence[ModelUpdate],
    model: Sequential,
    test_set: Dataset,
    threshold: float,
    always_keep: Optional[str] = None,
) -> list[ModelUpdate]:
    """Drop updates whose solo accuracy falls below ``threshold``.

    This is the paper's pre-aggregation fitness gate ("if the evaluation is
    over a pre-set threshold, the worker will include that model ...
    otherwise, it will be ignored").  ``always_keep`` pins the evaluating
    peer's own model so a client never discards itself.
    """
    kept = []
    for update in sorted(updates, key=lambda update: update.client_id):
        if always_keep is not None and update.client_id == always_keep:
            kept.append(update)
            continue
        if evaluate_weights(model, update.weights, test_set) >= threshold:
            kept.append(update)
    if not kept:
        raise SelectionError(f"no update passed threshold {threshold}")
    return kept


def greedy_combination(
    updates: Sequence[ModelUpdate],
    model: Sequential,
    test_set: Dataset,
    seed_client: Optional[str] = None,
    aggregator: Aggregator = fedavg,
) -> CombinationResult:
    """Forward selection for large cohorts (O(n^2) instead of O(2^n)).

    Starts from ``seed_client`` (or the best solo model) and adds the update
    that most improves local-test accuracy until no addition helps.
    """
    if not updates:
        raise SelectionError("no updates to combine")
    pool = {update.client_id: update for update in updates}
    if seed_client is not None:
        if seed_client not in pool:
            raise SelectionError(f"seed client {seed_client!r} not among updates")
        chosen = [pool.pop(seed_client)]
    else:
        solos = enumerate_combinations(list(pool.values()), model, test_set, min_size=1, max_size=1, aggregator=aggregator)
        best_solo = solos[0].members[0]
        chosen = [pool.pop(best_solo)]
    best_weights = aggregator(chosen)
    best_acc = evaluate_weights(model, best_weights, test_set)
    improved = True
    while improved and pool:
        improved = False
        best_candidate = None
        for client_id in sorted(pool):
            candidate_weights = aggregator(chosen + [pool[client_id]])
            acc = evaluate_weights(model, candidate_weights, test_set)
            if acc > best_acc:
                best_acc = acc
                best_candidate = client_id
                best_weights = candidate_weights
                improved = True
        if best_candidate is not None:
            chosen.append(pool.pop(best_candidate))
    return CombinationResult(
        members=tuple(update.client_id for update in chosen),
        accuracy=best_acc,
        weights=best_weights,
    )
