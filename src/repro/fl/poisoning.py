"""Attackers producing abnormal model updates.

The paper frames abnormal models as arising "from the natural data
heterogeneity" or from poisoning, and argues the consider-style selection
excludes them.  These attackers generate both kinds for the ablation
benchmark: label-flipping (data poisoning), additive-noise (unintended
noisy models), and scaling (model-replacement flavoured).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import ConfigError
from repro.fl.aggregation import ModelUpdate


class Attacker:
    """Interface: transform a client's honest behaviour into an attack."""

    def poison_dataset(self, dataset: Dataset, rng: np.random.Generator) -> Dataset:
        """Optionally corrupt the training data (default: pass through)."""
        return dataset

    def poison_update(self, update: ModelUpdate, rng: np.random.Generator) -> ModelUpdate:
        """Optionally corrupt the trained update (default: pass through)."""
        return update


@dataclass
class LabelFlipAttacker(Attacker):
    """Flip a fraction of training labels to a fixed target class.

    Classic data poisoning: the resulting model systematically confuses
    ``source -> target`` and drags any plain average towards that error.
    """

    flip_fraction: float = 1.0
    target_class: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.flip_fraction <= 1.0:
            raise ConfigError(f"flip_fraction must be in (0, 1], got {self.flip_fraction}")

    def poison_dataset(self, dataset: Dataset, rng: np.random.Generator) -> Dataset:
        y = dataset.y.copy()
        mask = rng.random(len(y)) < self.flip_fraction
        y[mask] = self.target_class
        return Dataset(dataset.x.copy(), y, f"{dataset.name}/label_flipped")


@dataclass
class NoiseAttacker(Attacker):
    """Add Gaussian noise to the trained weights (a 'noisy model').

    Models the unintended abnormality the paper attributes to heterogeneous
    or low-quality local data.
    """

    noise_std: float = 0.5

    def __post_init__(self) -> None:
        if self.noise_std <= 0:
            raise ConfigError(f"noise_std must be positive, got {self.noise_std}")

    def poison_update(self, update: ModelUpdate, rng: np.random.Generator) -> ModelUpdate:
        noisy = {
            key: value + rng.normal(0.0, self.noise_std, size=value.shape)
            for key, value in update.weights.items()
        }
        return ModelUpdate(
            client_id=update.client_id,
            weights=noisy,
            num_samples=update.num_samples,
            round_id=update.round_id,
            reported_accuracy=update.reported_accuracy,
            metadata={**update.metadata, "attack": "noise"},
        )


@dataclass
class ScaleAttacker(Attacker):
    """Scale the update by a large factor (model-replacement flavour).

    Against plain FedAvg a single scaled update dominates the average;
    median/trimmed-mean baselines resist it.
    """

    scale: float = 10.0

    def __post_init__(self) -> None:
        if self.scale == 1.0:
            raise ConfigError("scale of 1.0 is not an attack")

    def poison_update(self, update: ModelUpdate, rng: np.random.Generator) -> ModelUpdate:
        scaled = {key: value * self.scale for key, value in update.weights.items()}
        return ModelUpdate(
            client_id=update.client_id,
            weights=scaled,
            num_samples=update.num_samples,
            round_id=update.round_id,
            reported_accuracy=update.reported_accuracy,
            metadata={**update.metadata, "attack": "scale"},
        )
