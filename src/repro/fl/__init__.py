"""Federated-learning core (chain-agnostic).

Implements the training/aggregation machinery both evaluation settings use:

* local training (:mod:`repro.fl.trainer`, :mod:`repro.fl.client`),
* FedAvg and robust baselines (:mod:`repro.fl.aggregation`),
* the "consider" combination search and fitness-threshold filtering
  (:mod:`repro.fl.selection`), and its memoized/parallel fast path
  (:mod:`repro.fl.scoring`),
* wait-for-all / wait-for-k asynchronous policies (:mod:`repro.fl.async_policy`),
* the centralized Vanilla FL orchestrator (:mod:`repro.fl.vanilla`), and
* poisoning/noise attackers for abnormal-model experiments
  (:mod:`repro.fl.poisoning`).
"""

from repro.fl.client import FLClient, ClientConfig
from repro.fl.trainer import LocalTrainer, TrainConfig, TrainResult
from repro.fl.aggregation import (
    fedavg,
    uniform_average,
    coordinate_median,
    trimmed_mean,
    ModelUpdate,
)
from repro.fl.selection import (
    enumerate_combinations,
    best_combination,
    threshold_filter,
    greedy_combination,
    pick_best,
    CombinationResult,
)
from repro.fl.scoring import (
    CombinationEngine,
    EvaluationCache,
    ScoredSubset,
    dataset_fingerprint,
    weights_fingerprint,
)
from repro.fl.async_policy import WaitForAll, WaitForK, Deadline, AsyncPolicy
from repro.fl.vanilla import VanillaFL, VanillaConfig, VanillaRoundLog
from repro.fl.poisoning import LabelFlipAttacker, NoiseAttacker, ScaleAttacker
from repro.fl.evaluation import evaluate_on, evaluate_weights

__all__ = [
    "FLClient",
    "ClientConfig",
    "LocalTrainer",
    "TrainConfig",
    "TrainResult",
    "fedavg",
    "uniform_average",
    "coordinate_median",
    "trimmed_mean",
    "ModelUpdate",
    "enumerate_combinations",
    "best_combination",
    "threshold_filter",
    "greedy_combination",
    "pick_best",
    "CombinationResult",
    "CombinationEngine",
    "EvaluationCache",
    "ScoredSubset",
    "dataset_fingerprint",
    "weights_fingerprint",
    "WaitForAll",
    "WaitForK",
    "Deadline",
    "AsyncPolicy",
    "VanillaFL",
    "VanillaConfig",
    "VanillaRoundLog",
    "LabelFlipAttacker",
    "NoiseAttacker",
    "ScaleAttacker",
    "evaluate_on",
    "evaluate_weights",
]
