"""Parallel, memoized combination-scoring engine.

The paper's "consider" aggregation makes every peer score subsets of the
models it received on its private test set each round.  The seed
implementation (:mod:`repro.fl.selection`) pays, per subset, one full
FedAvg recompute (stack + tensordot over every member) plus a full
save/restore of the scratch model around every evaluation — the wall-clock
bottleneck at 25+ peers flagged by the ROADMAP.  This module is the fast
path; :mod:`repro.fl.selection` remains the serial reference it is tested
against.

Memoization key
---------------
Every accuracy ever computed is cached in an :class:`EvaluationCache`
under a **content-addressed** key ``(weights_id, test_set_id)``:

* ``test_set_id`` is a SHA-256 over the test set's ``x``/``y`` buffers,
  computed once per engine — distinct test sets can share one cache
  without ever sharing entries.
* For raw weight dicts (solo models, external callers) ``weights_id`` is
  a SHA-256 over the sorted ``(key, dtype, shape, buffer)`` stream, so a
  *mutated* weight dict never produces a stale hit.
* For subsets the engine aggregates itself, ``weights_id`` is derived
  structurally: ``("fedavg", ((member_id, num_samples), ...))`` in
  evaluation order, where each ``member_id`` is the member's content
  hash.  The aggregate is a pure function of that tuple, so the derived
  key is content-addressed by construction — without hashing the
  aggregated buffers on the hot path.

A single-member subset *is* its member's weights bit-for-bit (FedAvg's
``n/n = 1.0`` coefficient is exact), so solo subsets are keyed by the raw
content hash.  That one identity is what lets
:func:`CombinationEngine.threshold_filter` and the reputation rating pass
(:meth:`repro.core.decentralized.DecentralizedFL._rate_round`) reuse the
solo scores computed during enumeration instead of re-evaluating them.

Incremental aggregation
-----------------------
FedAvg over a subset is ``(sum_k n_k * w_k) / (sum_k n_k)``.  The engine
pre-scales each update once (``n_k * w_k``) and walks subsets
depth-first, extending a running left-to-right sum — each subset costs
one tensor add and one scale instead of a stack-and-tensordot over all
members.  The summation order (sorted members, left to right) is fixed,
so serial and parallel runs produce bit-identical aggregates.  The
scratch model's own weights are saved once per search and restored once
at the end (lazily: a search served entirely from cache never touches
the model), instead of the seed's save/restore around every call.

Determinism contract
--------------------
For every mode (serial, ``workers > 0``) and both strategies
(exhaustive, greedy), the engine returns the same chosen members, the
same accuracy table, and consumes tie-break RNG draws exactly like the
serial reference in :mod:`repro.fl.selection`:

* subsets are enumerated in a fixed order and re-sorted by
  ``(-accuracy, members)`` exactly like the reference;
* parallel runs chunk that fixed enumeration contiguously, workers score
  their chunks with the same left-to-right arithmetic, and results merge
  back in submission order — worker count never changes any value;
* tie-breaking happens in the parent via
  :func:`repro.fl.selection.pick_best` with the caller's RNG, so the
  stream sees one draw per multi-way tie, same as the reference;
* the *adopted* combination's weights are materialized with the
  reference aggregator itself (one call per search), so downstream state
  is byte-identical to the serial path.

Aggregated accuracies may differ from the reference by the usual
floating-point reassociation only in the last ulp of the *logits*; the
reported metric is an argmax count, which both suites pin to be equal.
"""

from __future__ import annotations

import hashlib
import multiprocessing
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from itertools import combinations as iter_combinations
from typing import Callable, Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import SelectionError
from repro.fl.aggregation import ModelUpdate, _check_compatible, fedavg
from repro.fl.selection import CombinationResult, pick_best
from repro.nn.model import Sequential

Aggregator = Callable[[Sequence[ModelUpdate]], dict[str, np.ndarray]]


def weights_fingerprint(weights: dict[str, np.ndarray]) -> str:
    """Content hash of a weight dict (sorted keys, dtype, shape, buffer)."""
    digest = hashlib.sha256()
    for key in sorted(weights):
        array = np.ascontiguousarray(weights[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(array.dtype).encode("ascii"))
        digest.update(str(array.shape).encode("ascii"))
        digest.update(array.data)
    return digest.hexdigest()


def dataset_fingerprint(dataset: Dataset) -> str:
    """Content hash of a test set's sample and label buffers."""
    digest = hashlib.sha256()
    for array in (dataset.x, dataset.y):
        array = np.ascontiguousarray(array)
        digest.update(str(array.dtype).encode("ascii"))
        digest.update(str(array.shape).encode("ascii"))
        digest.update(array.data)
    return digest.hexdigest()


class EvaluationCache:
    """Content-addressed accuracy store shared across searches.

    Keys are ``(weights_id, test_set_id)`` tuples (see the module
    docstring).  ``stats`` counts ``hits`` (served from cache), ``misses``
    (real model evaluations run by the owning engine), and ``absorbed``
    (entries merged from worker processes, which ran the evaluation
    elsewhere).
    """

    def __init__(self) -> None:
        self._entries: dict[object, float] = {}
        self.stats = {"hits": 0, "misses": 0, "absorbed": 0}

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: object) -> Optional[float]:
        """Cached accuracy for ``key``, counting the hit; None on miss."""
        value = self._entries.get(key)
        if value is not None:
            self.stats["hits"] += 1
        return value

    def store(self, key: object, accuracy: float) -> None:
        """Record a freshly evaluated accuracy (counts one miss)."""
        self.stats["misses"] += 1
        self._entries[key] = accuracy

    def absorb(self, key: object, accuracy: float) -> None:
        """Merge an entry evaluated in another process (worker result)."""
        self.stats["absorbed"] += 1
        self._entries[key] = accuracy

    def clear(self) -> None:
        """Drop all entries; cumulative stats are kept."""
        self._entries.clear()


@dataclass(frozen=True)
class ScoredSubset:
    """One scored combination: membership and local-test accuracy."""

    members: tuple[str, ...]
    accuracy: float

    @property
    def label(self) -> str:
        """Human-readable combination label, e.g. ``"A,B,C"``."""
        return ",".join(self.members)


# ---------------------------------------------------------------------------
# Worker-process plumbing (opt-in parallelism)
# ---------------------------------------------------------------------------

#: Per-process search state installed by the pool initializer.
_WORKER_STATE: dict = {}


def _init_subset_worker(model: Sequential, test_x, test_y, payload, batch_size: int) -> None:
    """Install one peer's search state in a pool worker.

    ``payload`` is ``[(client_id, weights, num_samples), ...]`` in the
    engine's canonical (sorted) order; the scaled tensors are precomputed
    here once so chunk tasks only pay adds.
    """
    keys = sorted(payload[0][1])
    params = model.parameters()
    if set(keys) != set(params):
        raise SelectionError(f"weight keys {keys} do not match model {sorted(params)}")
    for key in keys:
        if params[key].shape != payload[0][1][key].shape:
            raise SelectionError(
                f"{key}: shape {payload[0][1][key].shape} != model {params[key].shape}"
            )
    _WORKER_STATE.clear()
    _WORKER_STATE.update(
        model=model,
        test_x=test_x,
        test_y=test_y,
        batch_size=batch_size,
        keys=keys,
        payload=payload,
        scaled=[{key: num * weights[key] for key in keys} for _, weights, num in payload],
        params=model.parameters(),
        cache={},
    )


def _worker_evaluate(weights: dict[str, np.ndarray]) -> float:
    state = _WORKER_STATE
    params = state["params"]
    for key in state["keys"]:
        np.copyto(params[key], weights[key])
    return state["model"].evaluate_accuracy(
        state["test_x"], state["test_y"], batch_size=state["batch_size"]
    )


def _worker_subset_accuracy(index_tuple: tuple[int, ...]) -> float:
    """Accuracy of one subset, with the engine's exact arithmetic."""
    state = _WORKER_STATE
    cached = state["cache"].get(index_tuple)
    if cached is not None:
        return cached
    payload, scaled, keys = state["payload"], state["scaled"], state["keys"]
    if len(index_tuple) == 1:
        weights = payload[index_tuple[0]][1]
    else:
        sums = scaled[index_tuple[0]]
        for index in index_tuple[1:]:
            member = scaled[index]
            sums = {key: sums[key] + member[key] for key in keys}
        total = sum(payload[index][2] for index in index_tuple)
        weights = {key: sums[key] / total for key in keys}
    accuracy = _worker_evaluate(weights)
    state["cache"][index_tuple] = accuracy
    state["evaluations"] = state.get("evaluations", 0) + 1
    return accuracy


def _score_chunk(chunk: list[tuple[int, ...]]) -> tuple[list[float], int]:
    """Score a contiguous chunk of subsets; returns (accuracies, evals)."""
    _WORKER_STATE["evaluations"] = 0
    return [_worker_subset_accuracy(indices) for indices in chunk], _WORKER_STATE["evaluations"]


class CombinationEngine:
    """Memoized (optionally parallel) combination scorer for one peer.

    One engine wraps one scratch ``model`` and one private ``test_set``
    and exposes the same searches as :mod:`repro.fl.selection` —
    :meth:`enumerate`, :meth:`best`, :meth:`greedy`,
    :meth:`threshold_filter` — with identical results (see the module
    docstring's determinism contract).

    ``workers=0`` runs in-process; ``workers > 0`` fans subset scoring
    out to a fork-based process pool with deterministic chunking.
    ``instrument``, when set, is called with the cache key before every
    *real* model evaluation (cache hits never fire it).
    """

    def __init__(
        self,
        model: Sequential,
        test_set: Dataset,
        aggregator: Aggregator = fedavg,
        cache: Optional[EvaluationCache] = None,
        workers: int = 0,
        batch_size: int = 512,
        instrument: Optional[Callable[[object], None]] = None,
    ) -> None:
        if workers < 0:
            raise SelectionError(f"workers must be >= 0, got {workers}")
        self.model = model
        self.test_set = test_set
        self.aggregator = aggregator
        self.cache = cache if cache is not None else EvaluationCache()
        self.workers = workers
        self.batch_size = batch_size
        self.instrument = instrument
        self.test_set_id = dataset_fingerprint(test_set)
        #: Structural subset keys are only valid for the reference FedAvg.
        self._incremental = aggregator is fedavg
        self._saved: Optional[dict[str, np.ndarray]] = None
        self._params: Optional[dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Scratch-model session (one save/restore per search, lazily)
    # ------------------------------------------------------------------

    def _ensure_session(self, weights_like: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Open the scratch-model session (first real evaluation only).

        Snapshots the model once — a search answered fully from cache
        never copies anything — and validates key set/shapes once against
        ``weights_like``; later installs are raw buffer writes.
        """
        if self._saved is None:
            self._saved = self.model.get_weights()
            params = self.model.parameters()
            if set(weights_like) != set(params):
                raise SelectionError(
                    f"weight keys {sorted(weights_like)} do not match model {sorted(params)}"
                )
            for key, value in weights_like.items():
                if params[key].shape != value.shape:
                    raise SelectionError(
                        f"{key}: shape {value.shape} != model {params[key].shape}"
                    )
            self._params = params
        return self._params

    def _end_session(self) -> None:
        if self._saved is not None:
            self.model.set_weights(self._saved)
            self._saved = None
            self._params = None

    # ------------------------------------------------------------------
    # Cached scoring primitives
    # ------------------------------------------------------------------

    def _evaluate_installed(self, key: object) -> float:
        accuracy = self.model.evaluate_accuracy(
            self.test_set.x, self.test_set.y, batch_size=self.batch_size
        )
        self.cache.store(key, accuracy)
        return accuracy

    def _score(self, key: object, realize: Callable[[], dict[str, np.ndarray]]) -> float:
        """Cached accuracy under ``key``; ``realize`` builds the weights
        only on a miss (a hit skips even the aggregate's final scale)."""
        cached = self.cache.lookup(key)
        if cached is not None:
            return cached
        if self.instrument is not None:
            self.instrument(key)
        weights = realize()
        params = self._ensure_session(weights)
        # Raw dicts arrive from arbitrary callers (threshold_filter,
        # score_weights), so every install re-validates: a partial dict
        # must never leave stale parameters behind, and np.copyto would
        # otherwise broadcast a shape mismatch silently.
        if len(weights) != len(params):
            raise SelectionError(
                f"weight keys {sorted(weights)} do not match model {sorted(params)}"
            )
        for name, value in weights.items():
            target = params.get(name)
            if target is None:
                raise SelectionError(f"unexpected weight key {name!r}")
            if target.shape != np.shape(value):
                raise SelectionError(
                    f"{name}: shape {np.shape(value)} != model {target.shape}"
                )
            np.copyto(target, value)
        return self._evaluate_installed(key)

    def _score_fedavg(self, key: object, sums: dict[str, np.ndarray], total: int) -> float:
        """Cached FedAvg-subset accuracy: on a miss the final scale is
        written straight into the model's parameter buffers (no aggregate
        dict is ever materialized)."""
        cached = self.cache.lookup(key)
        if cached is not None:
            return cached
        if self.instrument is not None:
            self.instrument(key)
        params = self._ensure_session(sums)
        for name, value in sums.items():
            np.divide(value, total, out=params[name])
        return self._evaluate_installed(key)

    def solo_key(self, update: ModelUpdate) -> tuple[str, str]:
        """Cache key of one update's raw weights on this test set."""
        return (weights_fingerprint(update.weights), self.test_set_id)

    def solo_accuracy(self, update: ModelUpdate) -> float:
        """Accuracy of one update's own model (cached)."""
        try:
            return self._score(self.solo_key(update), lambda: update.weights)
        finally:
            self._end_session()

    def score_weights(self, weights: dict[str, np.ndarray]) -> float:
        """Accuracy of an arbitrary weight dict (content-hash cached)."""
        try:
            return self._score((weights_fingerprint(weights), self.test_set_id), lambda: weights)
        finally:
            self._end_session()

    def absorb_solo(self, update: ModelUpdate, accuracy: float) -> None:
        """Merge a solo score evaluated elsewhere (worker process)."""
        self.cache.absorb(self.solo_key(update), accuracy)

    # ------------------------------------------------------------------
    # Searches
    # ------------------------------------------------------------------

    def enumerate(
        self,
        updates: Sequence[ModelUpdate],
        min_size: int = 1,
        max_size: Optional[int] = None,
    ) -> list[ScoredSubset]:
        """Score every subset with ``min_size <= |S| <= max_size``.

        Output is sorted by ``(-accuracy, members)`` — the reference
        ordering of :func:`repro.fl.selection.enumerate_combinations`.
        """
        if not updates:
            raise SelectionError("no updates to combine")
        if min_size < 1:
            raise SelectionError(f"min_size must be >= 1, got {min_size}")
        keys = _check_compatible(updates)
        ordered = sorted(updates, key=lambda update: update.client_id)
        limit = min(max_size if max_size is not None else len(ordered), len(ordered))
        try:
            if not self._incremental:
                scored = self._enumerate_generic(ordered, min_size, limit)
            elif self.workers > 0:
                scored = self._enumerate_parallel(ordered, keys, min_size, limit)
            else:
                scored = self._enumerate_serial(ordered, keys, min_size, limit)
        finally:
            self._end_session()
        scored.sort(key=lambda result: (-result.accuracy, result.members))
        return scored

    def _enumerate_generic(
        self, ordered: list[ModelUpdate], min_size: int, limit: int
    ) -> list[ScoredSubset]:
        """Per-subset aggregator calls for non-FedAvg aggregators (keys
        fall back to content hashes of the aggregated weights)."""
        scored = []
        for size in range(min_size, limit + 1):
            for subset in iter_combinations(ordered, size):
                weights = self.aggregator(subset)
                accuracy = self._score(
                    (weights_fingerprint(weights), self.test_set_id), lambda: weights
                )
                scored.append(
                    ScoredSubset(tuple(update.client_id for update in subset), accuracy)
                )
        return scored

    def _fingerprints(self, ordered: list[ModelUpdate]) -> list[str]:
        return [weights_fingerprint(update.weights) for update in ordered]

    def _subset_key(self, trace: tuple[tuple[str, int], ...]) -> tuple:
        """Structural cache key for a FedAvg aggregate (evaluation order)."""
        return ("fedavg", trace, self.test_set_id)

    def _flat_layout(
        self, template: dict[str, np.ndarray], keys: list[str]
    ) -> list[tuple[str, int, int, tuple[int, ...]]]:
        """(key, start, end, shape) spans of the packed parameter vector."""
        layout = []
        start = 0
        for key in keys:
            size = int(np.prod(template[key].shape, dtype=np.int64))
            layout.append((key, start, start + size, template[key].shape))
            start += size
        return layout

    def _score_fedavg_flat(
        self,
        key_obj: object,
        flat_sums: np.ndarray,
        total: int,
        layout: list[tuple[str, int, int, tuple[int, ...]]],
        template: dict[str, np.ndarray],
    ) -> float:
        """Cached FedAvg-subset accuracy from a packed sum vector.

        Element-wise ops never reassociate, so the packed add/divide are
        bit-identical to the per-key path the workers (and greedy) use.
        """
        cached = self.cache.lookup(key_obj)
        if cached is not None:
            return cached
        if self.instrument is not None:
            self.instrument(key_obj)
        params = self._ensure_session(template)
        for key, start, end, shape in layout:
            np.divide(flat_sums[start:end].reshape(shape), total, out=params[key])
        return self._evaluate_installed(key_obj)

    def _enumerate_serial(
        self, ordered: list[ModelUpdate], keys: list[str], min_size: int, limit: int
    ) -> list[ScoredSubset]:
        """Depth-first incremental enumeration (one add + scale per subset).

        Each update's scaled weights are packed into one flat vector, so
        extending a prefix is a single vectorized add.  Depth ``d`` owns
        one preallocated sum vector: a node's sum stays valid for its
        whole subtree, siblings overwrite it only after the subtree
        finishes — the hot loop allocates nothing.
        """
        if min_size > limit:
            return []  # the reference's empty size range
        fingerprints = self._fingerprints(ordered)
        if limit == 1:
            return [
                ScoredSubset(
                    (update.client_id,),
                    self._score(
                        (fingerprints[index], self.test_set_id),
                        lambda update=update: update.weights,
                    ),
                )
                for index, update in enumerate(ordered)
            ]
        template = ordered[0].weights
        dtypes = {template[key].dtype for key in keys}
        if len(dtypes) != 1 or not np.issubdtype(next(iter(dtypes)), np.floating):
            # Packing mixed/integer dtypes into one vector would change
            # the arithmetic precision; take the reference-shaped path.
            return self._enumerate_generic(ordered, min_size, limit)
        dtype = next(iter(dtypes))
        layout = self._flat_layout(template, keys)
        width = layout[-1][2]
        scaled = np.empty((len(ordered), width), dtype=dtype)
        for row, update in enumerate(ordered):
            for key, start, end, _shape in layout:
                scaled[row, start:end] = update.num_samples * update.weights[key].ravel()
        n = len(ordered)
        buffers = np.empty((limit + 1, width), dtype=dtype)
        out: list[ScoredSubset] = []

        def visit(start, members, trace, sums, total, size) -> None:
            for index in range(start, n):
                update = ordered[index]
                new_members = members + (update.client_id,)
                new_trace = trace + ((fingerprints[index], update.num_samples),)
                new_total = total + update.num_samples
                new_size = size + 1
                if size == 0:
                    new_sums = scaled[index]
                elif new_size == limit and new_size >= min_size:
                    # Leaf: the sum is only needed on a cache miss.
                    new_sums = None
                else:
                    new_sums = buffers[new_size]
                    np.add(sums, scaled[index], out=new_sums)
                if new_size >= min_size:
                    if new_size == 1:
                        accuracy = self._score(
                            (fingerprints[index], self.test_set_id),
                            lambda update=update: update.weights,
                        )
                    else:
                        key_obj = self._subset_key(new_trace)
                        if new_sums is None:
                            accuracy = self.cache.lookup(key_obj)
                            if accuracy is None:
                                new_sums = buffers[new_size]
                                np.add(sums, scaled[index], out=new_sums)
                                accuracy = self._score_fedavg_flat(
                                    key_obj, new_sums, new_total, layout, template
                                )
                        else:
                            accuracy = self._score_fedavg_flat(
                                key_obj, new_sums, new_total, layout, template
                            )
                    out.append(ScoredSubset(new_members, accuracy))
                if new_size < limit:
                    visit(index + 1, new_members, new_trace, new_sums, new_total, new_size)

        visit(0, (), (), None, 0, 0)
        return out

    def _enumerate_parallel(
        self, ordered: list[ModelUpdate], keys: list[str], min_size: int, limit: int
    ) -> list[ScoredSubset]:
        """Chunked pool enumeration; merge order is the submission order."""
        fingerprints = self._fingerprints(ordered)
        n = len(ordered)
        subsets = [
            indices
            for size in range(min_size, limit + 1)
            for indices in iter_combinations(range(n), size)
        ]

        def key_of(indices: tuple[int, ...]) -> object:
            if len(indices) == 1:
                return (fingerprints[indices[0]], self.test_set_id)
            return self._subset_key(
                tuple((fingerprints[i], ordered[i].num_samples) for i in indices)
            )

        # Serve already-known subsets from the cache; only the remainder
        # is farmed out, in its original (deterministic) order.
        accuracies: dict[tuple[int, ...], float] = {}
        pending: list[tuple[int, ...]] = []
        for indices in subsets:
            cached = self.cache.lookup(key_of(indices))
            if cached is not None:
                accuracies[indices] = cached
            else:
                pending.append(indices)
        if pending:
            executor = self._executor(ordered)
            if executor is None:
                return self._enumerate_serial(ordered, keys, min_size, limit)
            try:
                with executor:
                    chunk_size = max(
                        1, (len(pending) + 4 * self.workers - 1) // (4 * self.workers)
                    )
                    chunks = [
                        pending[start : start + chunk_size]
                        for start in range(0, len(pending), chunk_size)
                    ]
                    for chunk, (chunk_accs, _evals) in zip(
                        chunks, executor.map(_score_chunk, chunks)
                    ):
                        for indices, accuracy in zip(chunk, chunk_accs):
                            self.cache.absorb(key_of(indices), accuracy)
                            accuracies[indices] = accuracy
            except (BrokenExecutor, OSError):  # pragma: no cover - host-dependent
                # Workers spawn lazily, so a host that cannot fork fails
                # here, not at pool construction.  Already-absorbed chunks
                # stay valid cache entries; the serial path reuses them.
                return self._enumerate_serial(ordered, keys, min_size, limit)
        return [
            ScoredSubset(tuple(ordered[i].client_id for i in indices), accuracies[indices])
            for indices in subsets
        ]

    def _executor(self, ordered: list[ModelUpdate]) -> Optional[ProcessPoolExecutor]:
        """A pool primed with this search's state, or None if the host
        cannot fork (the engine then degrades to the serial path)."""
        payload = [
            (update.client_id, update.weights, update.num_samples) for update in ordered
        ]
        try:
            return ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_init_subset_worker,
                initargs=(self.model, self.test_set.x, self.test_set.y, payload, self.batch_size),
            )
        except (OSError, ValueError):  # pragma: no cover - host-dependent
            return None

    def materialize(
        self, members: Sequence[str], updates: Sequence[ModelUpdate], accuracy: float
    ) -> CombinationResult:
        """Exact-reference weights for an adopted combination.

        One aggregator call over the members *in the given order* — the
        adopted weights are byte-identical to the serial reference's.
        """
        by_id = {update.client_id: update for update in updates}
        weights = self.aggregator([by_id[member] for member in members])
        return CombinationResult(members=tuple(members), accuracy=accuracy, weights=weights)

    def best(
        self, updates: Sequence[ModelUpdate], rng: Optional[np.random.Generator] = None
    ) -> CombinationResult:
        """Best-scoring subset with the reference tie-break semantics."""
        scored = self.enumerate(updates)
        chosen = pick_best(scored, rng)
        return self.materialize(chosen.members, updates, chosen.accuracy)

    def greedy(
        self, updates: Sequence[ModelUpdate], seed_client: Optional[str] = None
    ) -> CombinationResult:
        """Forward selection replicating the reference step for step.

        Candidate sets are scored from a running sum of the chosen
        members (insertion order) plus the candidate, so each step costs
        one add + scale per candidate instead of a growing recompute.
        """
        if not updates:
            raise SelectionError("no updates to combine")
        if not self._incremental:
            return self._greedy_generic(updates, seed_client)
        keys = _check_compatible(updates)
        pool = {update.client_id: update for update in updates}
        fingerprints = {
            update.client_id: weights_fingerprint(update.weights) for update in updates
        }
        scaled = {
            update.client_id: {
                key: update.num_samples * update.weights[key] for key in keys
            }
            for update in updates
        }
        try:
            if seed_client is not None:
                if seed_client not in pool:
                    raise SelectionError(f"seed client {seed_client!r} not among updates")
                chosen = [pool.pop(seed_client)]
            else:
                solos = self.enumerate(list(pool.values()), min_size=1, max_size=1)
                chosen = [pool.pop(solos[0].members[0])]
            first = chosen[0]
            trace = ((fingerprints[first.client_id], first.num_samples),)
            sums = scaled[first.client_id]
            total = first.num_samples
            best_acc = self._score(
                (fingerprints[first.client_id], self.test_set_id), lambda: first.weights
            )
            cand_buffer = {key: np.empty_like(sums[key]) for key in keys}
            improved = True
            while improved and pool:
                improved = False
                best_candidate = None
                for client_id in sorted(pool):
                    candidate = pool[client_id]
                    cand_trace = trace + ((fingerprints[client_id], candidate.num_samples),)
                    key_obj = self._subset_key(cand_trace)
                    accuracy = self.cache.lookup(key_obj)
                    if accuracy is None:
                        member = scaled[client_id]
                        for key in keys:
                            np.add(sums[key], member[key], out=cand_buffer[key])
                        accuracy = self._score_fedavg(
                            key_obj, cand_buffer, total + candidate.num_samples
                        )
                    if accuracy > best_acc:
                        best_acc = accuracy
                        best_candidate = client_id
                        improved = True
                if best_candidate is not None:
                    candidate = pool.pop(best_candidate)
                    member = scaled[best_candidate]
                    sums = {key: sums[key] + member[key] for key in keys}
                    total += candidate.num_samples
                    trace = trace + ((fingerprints[best_candidate], candidate.num_samples),)
                    chosen.append(candidate)
        finally:
            self._end_session()
        return self.materialize(
            tuple(update.client_id for update in chosen), updates, best_acc
        )

    def _greedy_generic(
        self, updates: Sequence[ModelUpdate], seed_client: Optional[str]
    ) -> CombinationResult:
        """Reference-shaped greedy for non-FedAvg aggregators: one
        aggregator call per candidate, content-hash cache keys."""
        _check_compatible(updates)
        pool = {update.client_id: update for update in updates}
        try:
            if seed_client is not None:
                if seed_client not in pool:
                    raise SelectionError(f"seed client {seed_client!r} not among updates")
                chosen = [pool.pop(seed_client)]
            else:
                solos = self.enumerate(list(pool.values()), min_size=1, max_size=1)
                chosen = [pool.pop(solos[0].members[0])]
            best_weights = self.aggregator(chosen)
            best_acc = self._score(
                (weights_fingerprint(best_weights), self.test_set_id), lambda: best_weights
            )
            improved = True
            while improved and pool:
                improved = False
                best_candidate = None
                for client_id in sorted(pool):
                    weights = self.aggregator(chosen + [pool[client_id]])
                    accuracy = self._score(
                        (weights_fingerprint(weights), self.test_set_id),
                        lambda weights=weights: weights,
                    )
                    if accuracy > best_acc:
                        best_acc = accuracy
                        best_candidate = client_id
                        improved = True
                if best_candidate is not None:
                    chosen.append(pool.pop(best_candidate))
        finally:
            self._end_session()
        return self.materialize(
            tuple(update.client_id for update in chosen), updates, best_acc
        )

    def threshold_filter(
        self,
        updates: Sequence[ModelUpdate],
        threshold: float,
        always_keep: Optional[str] = None,
    ) -> list[ModelUpdate]:
        """Reference fitness gate, served from the solo-score cache."""
        kept = []
        try:
            for update in sorted(updates, key=lambda update: update.client_id):
                if always_keep is not None and update.client_id == always_keep:
                    kept.append(update)
                    continue
                accuracy = self._score(self.solo_key(update), lambda u=update: u.weights)
                if accuracy >= threshold:
                    kept.append(update)
        finally:
            self._end_session()
        if not kept:
            raise SelectionError(f"no update passed threshold {threshold}")
        return kept


# ---------------------------------------------------------------------------
# Peer-level fan-out (DecentralizedFL: independent searches in parallel)
# ---------------------------------------------------------------------------


def _init_peer_worker(
    model: Sequential,
    union_payload: list[tuple[str, dict[str, np.ndarray], int]],
    batch_size: int,
) -> None:
    """Install the round's shared search state in a pool worker.

    One scratch architecture and the *union* of the round's updates are
    shipped once per worker; per-peer tasks then carry only the peer's
    (small) test set and member id list — O(n) weight transfers per
    round instead of O(n^2).  The model's own weights are irrelevant:
    every evaluation installs the weights under test.
    """
    _WORKER_STATE.clear()
    _WORKER_STATE.update(
        model=model,
        batch_size=batch_size,
        updates={
            cid: ModelUpdate(client_id=cid, weights=weights, num_samples=num)
            for cid, weights, num in union_payload
        },
    )


def _peer_search_task(test_x, test_y, member_ids: list[str], use_greedy: bool) -> dict:
    """One peer's whole combination search, run inside a pool worker.

    Returns accuracies only (plus solo cache entries for the parent to
    absorb); tie-breaking, weight materialization, and adoption stay in
    the parent so RNG draws and adopted bytes match the serial path.
    """
    from repro.data.dataset import Dataset as _Dataset

    state = _WORKER_STATE
    updates = [state["updates"][cid] for cid in member_ids]
    engine = CombinationEngine(
        state["model"], _Dataset(test_x, test_y), batch_size=state["batch_size"]
    )
    result: dict = {}
    if use_greedy:
        chosen = engine.greedy(updates)
        result["greedy"] = (chosen.members, chosen.accuracy)
    else:
        scored = engine.enumerate(updates)
        result["scored"] = [(entry.members, entry.accuracy) for entry in scored]
    result["solos"] = [
        (engine.solo_key(update), accuracy)
        for update in updates
        if (accuracy := engine.cache.lookup(engine.solo_key(update))) is not None
    ]
    result["evaluations"] = engine.cache.stats["misses"]
    return result


def run_peer_searches(
    tasks: list[tuple[Sequential, Dataset, list[ModelUpdate], bool]],
    workers: int,
    batch_size: int = 512,
) -> Optional[list[dict]]:
    """Run independent per-peer searches on a process pool, in order.

    ``tasks`` is ``[(model, test_set, updates, use_greedy), ...]``;
    results come back in the same order.  All tasks must share one model
    architecture (the FL contract), and within a round a client id names
    one update, so the first task's model and the de-duplicated union of
    updates prime every worker via the pool initializer.  Returns None
    when the host cannot fork, signalling the caller to fall back to the
    serial path.
    """
    union: dict[str, ModelUpdate] = {}
    for _model, _test_set, updates, _use_greedy in tasks:
        for update in updates:
            union.setdefault(update.client_id, update)
    payload = [
        (update.client_id, update.weights, update.num_samples)
        for update in union.values()
    ]
    try:
        executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context("fork"),
            initializer=_init_peer_worker,
            initargs=(tasks[0][0], payload, batch_size),
        )
    except (OSError, ValueError):  # pragma: no cover - host-dependent
        return None
    try:
        with executor:
            futures = [
                executor.submit(
                    _peer_search_task,
                    test_set.x,
                    test_set.y,
                    [update.client_id for update in updates],
                    use_greedy,
                )
                for _model, test_set, updates, use_greedy in tasks
            ]
            return [future.result() for future in futures]
    except (BrokenExecutor, OSError):  # pragma: no cover - host-dependent
        # Worker processes spawn lazily: a host that cannot fork fails at
        # result() time, not construction — still signal serial fallback.
        return None
