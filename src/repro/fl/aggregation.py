"""Model aggregation: FedAvg plus robust baselines.

``fedavg`` is the paper's aggregation algorithm (McMahan et al. [1]):
sample-count-weighted averaging of weight dicts.  The robust alternatives
(coordinate median, trimmed mean) serve the poisoning ablation, where plain
averaging is the vulnerable baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import AggregationError
from repro.nn.serialize import WeightArchive


@dataclass
class ModelUpdate:
    """One client's contribution to a round."""

    client_id: str
    weights: dict[str, np.ndarray]
    num_samples: int
    round_id: int = -1
    reported_accuracy: float = 0.0
    metadata: dict = field(default_factory=dict)
    _archive: Optional[WeightArchive] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise AggregationError(f"{self.client_id}: num_samples must be positive")
        if not self.weights:
            raise AggregationError(f"{self.client_id}: empty weight dict")

    def archive(self) -> WeightArchive:
        """Cached single-encoding archive of this update's weights.

        Everything on the commitment path (off-chain payload, on-chain
        hash, size telemetry) should read from this one archive; building
        it here means re-commits of the same update never re-serialize.
        The weights must not be mutated after the first call.
        """
        if self._archive is None:
            self._archive = WeightArchive.from_weights(self.weights)
        return self._archive


def _check_compatible(updates: Sequence[ModelUpdate]) -> list[str]:
    """Validate updates share keys/shapes; return the sorted key list."""
    if not updates:
        raise AggregationError("no model updates to aggregate")
    keys = sorted(updates[0].weights)
    for update in updates[1:]:
        if sorted(update.weights) != keys:
            raise AggregationError(
                f"{update.client_id}: weight keys differ from {updates[0].client_id}"
            )
        for key in keys:
            if update.weights[key].shape != updates[0].weights[key].shape:
                raise AggregationError(
                    f"{update.client_id}: {key} shape {update.weights[key].shape} "
                    f"!= {updates[0].weights[key].shape}"
                )
    return keys


def fedavg(updates: Sequence[ModelUpdate]) -> dict[str, np.ndarray]:
    """Sample-count-weighted federated averaging (the paper's aggregator).

    ``w_global = sum_k (n_k / n) * w_k`` per parameter tensor.
    """
    keys = _check_compatible(updates)
    total = sum(update.num_samples for update in updates)
    aggregated: dict[str, np.ndarray] = {}
    for key in keys:
        stacked = np.stack([update.weights[key] for update in updates])
        weights = np.array([update.num_samples / total for update in updates])
        aggregated[key] = np.tensordot(weights, stacked, axes=1)
    return aggregated


def uniform_average(updates: Sequence[ModelUpdate]) -> dict[str, np.ndarray]:
    """Unweighted mean — what FedAvg reduces to for equal client sizes."""
    keys = _check_compatible(updates)
    return {
        key: np.stack([update.weights[key] for update in updates]).mean(axis=0)
        for key in keys
    }


def coordinate_median(updates: Sequence[ModelUpdate]) -> dict[str, np.ndarray]:
    """Coordinate-wise median: robust to a minority of arbitrary updates."""
    keys = _check_compatible(updates)
    return {
        key: np.median(np.stack([update.weights[key] for update in updates]), axis=0)
        for key in keys
    }


def trimmed_mean(updates: Sequence[ModelUpdate], trim_ratio: float = 0.2) -> dict[str, np.ndarray]:
    """Coordinate-wise trimmed mean, dropping the ``trim_ratio`` extremes.

    With ``k = floor(trim_ratio * n)`` values trimmed from each end; falls
    back to the plain mean when ``n`` is too small to trim.
    """
    if not 0.0 <= trim_ratio < 0.5:
        raise AggregationError(f"trim_ratio must be in [0, 0.5), got {trim_ratio}")
    keys = _check_compatible(updates)
    n = len(updates)
    k = int(trim_ratio * n)
    result: dict[str, np.ndarray] = {}
    for key in keys:
        stacked = np.sort(np.stack([update.weights[key] for update in updates]), axis=0)
        trimmed = stacked[k : n - k] if n - 2 * k >= 1 else stacked
        result[key] = trimmed.mean(axis=0)
    return result


#: Registry used by experiment configs and the poisoning ablation.
AGGREGATORS = {
    "fedavg": fedavg,
    "uniform": uniform_average,
    "median": coordinate_median,
    "trimmed_mean": trimmed_mean,
}
