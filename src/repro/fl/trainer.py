"""Local training loop: the five epochs each client runs per round."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.data.dataset import Dataset, batch_iterator
from repro.errors import ConfigError
from repro.nn.losses import CrossEntropyLoss
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD, Adam, Momentum, Optimizer


def make_optimizer(kind: str, learning_rate: float, **kwargs) -> Optimizer:
    """Build an optimizer by name (``sgd`` / ``momentum`` / ``adam``)."""
    builders = {"sgd": SGD, "momentum": Momentum, "adam": Adam}
    try:
        return builders[kind](learning_rate, **kwargs)
    except KeyError:
        raise ConfigError(f"unknown optimizer {kind!r}; choose from {sorted(builders)}") from None


@dataclass
class TrainConfig:
    """Local-training hyperparameters (paper: 5 epochs per round)."""

    epochs: int = 5
    batch_size: int = 32
    learning_rate: float = 0.05
    optimizer: str = "sgd"
    shuffle: bool = True

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ConfigError(f"learning_rate must be positive, got {self.learning_rate}")


@dataclass
class TrainResult:
    """Summary of one local-training call."""

    epochs_run: int
    batches_run: int
    final_loss: float
    loss_history: list[float] = field(default_factory=list)


class LocalTrainer:
    """Runs epochs of minibatch SGD on a client's local dataset.

    A fresh optimizer is created per :meth:`train` call: federated rounds
    restart optimizer state after each global update, matching standard
    FedAvg practice (and the paper's per-round PyTorch training).
    """

    def __init__(self, config: TrainConfig, rng: Optional[np.random.Generator] = None) -> None:
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.loss_fn = CrossEntropyLoss()

    def train(self, model: Sequential, dataset: Dataset) -> TrainResult:
        """Train ``model`` in place; returns loss telemetry."""
        config = self.config
        optimizer = make_optimizer(config.optimizer, config.learning_rate)
        loss_history: list[float] = []
        batches = 0
        last_loss = float("nan")
        for _epoch in range(config.epochs):
            epoch_losses = []
            iterator = batch_iterator(
                dataset,
                config.batch_size,
                rng=self.rng if config.shuffle else None,
            )
            for x_batch, y_batch in iterator:
                loss = model.train_step(x_batch, y_batch, self.loss_fn, optimizer)
                epoch_losses.append(loss)
                batches += 1
            if epoch_losses:
                last_loss = float(np.mean(epoch_losses))
                loss_history.append(last_loss)
        return TrainResult(
            epochs_run=config.epochs,
            batches_run=batches,
            final_loss=last_loss,
            loss_history=loss_history,
        )
