"""Centralized (Vanilla) federated learning — the paper's first setting.

Three clients train locally for five epochs; a central aggregator combines
their updates and returns the global model.  Two aggregator behaviours are
compared (Table I / Figure 3):

* ``not consider`` — plain FedAvg over all received updates (traditional).
* ``consider`` — the aggregator holds a "default test set" and installs the
  best-scoring *combination* of the received updates instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import ConfigError, RoundError
from repro.fl.aggregation import ModelUpdate, fedavg
from repro.fl.client import FLClient
from repro.fl.selection import best_combination
from repro.nn.model import Sequential


@dataclass
class VanillaConfig:
    """Orchestration parameters (paper defaults: 10 rounds, consider on/off)."""

    rounds: int = 10
    consider: bool = False

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ConfigError(f"rounds must be >= 1, got {self.rounds}")


@dataclass
class VanillaRoundLog:
    """What happened in one communication round."""

    round_id: int
    aggregation_type: str                       # "consider" | "not_consider"
    selected_members: tuple[str, ...]           # which updates formed the global
    aggregator_accuracy: float                  # on the aggregator's default test set
    client_accuracy: dict[str, float] = field(default_factory=dict)  # per client test set


class VanillaFL:
    """Centralized FL driver producing the Table I accuracy series."""

    def __init__(
        self,
        clients: list[FLClient],
        aggregator_test_set: Dataset,
        config: VanillaConfig,
        model_builder: Callable[[np.random.Generator], Sequential],
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not clients:
            raise ConfigError("need at least one client")
        self.clients = clients
        self.aggregator_test_set = aggregator_test_set
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng(0)
        # The aggregator needs a scratch architecture to score combinations.
        self._scratch_model = model_builder(np.random.default_rng(0))
        self.round_logs: list[VanillaRoundLog] = []

    def _aggregate(self, updates: list[ModelUpdate]) -> tuple[dict[str, np.ndarray], tuple[str, ...], float]:
        """Return (global weights, members used, aggregator-test accuracy)."""
        if not updates:
            raise RoundError("no updates received")
        if self.config.consider:
            result = best_combination(
                updates,
                self._scratch_model,
                self.aggregator_test_set,
                rng=self.rng,
            )
            return result.weights, result.members, result.accuracy
        weights = fedavg(updates)
        from repro.fl.evaluation import evaluate_weights

        acc = evaluate_weights(self._scratch_model, weights, self.aggregator_test_set)
        return weights, tuple(sorted(update.client_id for update in updates)), acc

    def run_round(self, round_id: int) -> VanillaRoundLog:
        """One communication round: train all, aggregate, redistribute."""
        updates = [client.train_local(round_id) for client in self.clients]
        global_weights, members, agg_acc = self._aggregate(updates)
        log = VanillaRoundLog(
            round_id=round_id,
            aggregation_type="consider" if self.config.consider else "not_consider",
            selected_members=members,
            aggregator_accuracy=agg_acc,
        )
        for client in self.clients:
            client.apply_global(global_weights)
            log.client_accuracy[client.client_id] = client.evaluate()
        self.round_logs.append(log)
        return log

    def run(self) -> list[VanillaRoundLog]:
        """Run all configured rounds; returns the full log."""
        for round_id in range(1, self.config.rounds + 1):
            self.run_round(round_id)
        return self.round_logs

    def accuracy_series(self, client_id: str) -> list[float]:
        """Per-round accuracy for one client (a Table I row)."""
        return [log.client_accuracy[client_id] for log in self.round_logs]
