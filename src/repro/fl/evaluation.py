"""Evaluation helpers: score a model or a raw weight dict on a dataset."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.nn.model import Sequential


def evaluate_on(model: Sequential, dataset: Dataset, batch_size: int = 512) -> float:
    """Test accuracy of ``model`` on ``dataset``."""
    return model.evaluate_accuracy(dataset.x, dataset.y, batch_size=batch_size)


def evaluate_weights(
    model: Sequential,
    weights: dict[str, np.ndarray],
    dataset: Dataset,
    batch_size: int = 512,
) -> float:
    """Accuracy of ``weights`` using ``model`` as scratch architecture.

    Saves and restores the model's own weights, so the call has no side
    effects — this is the primitive behind "evaluate the fitness of the
    shared model" on a client's private test set.
    """
    saved = model.get_weights()
    try:
        model.set_weights(weights)
        return model.evaluate_accuracy(dataset.x, dataset.y, batch_size=batch_size)
    finally:
        model.set_weights(saved)
