"""Federated client: local data, local model, train/evaluate/update cycle."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import ConfigError
from repro.fl.aggregation import ModelUpdate
from repro.fl.poisoning import Attacker
from repro.fl.trainer import LocalTrainer, TrainConfig, TrainResult
from repro.nn.model import Sequential


@dataclass
class ClientConfig:
    """Identity and training setup for one client.

    ``attacker`` optionally turns the client adversarial: its
    :meth:`~repro.fl.poisoning.Attacker.poison_update` hook runs on every
    update the client produces (dataset-level poisoning is applied by the
    scenario runner before the client is built, so the honest path here
    stays untouched).
    """

    client_id: str
    train_config: TrainConfig
    model_kind: str = "simple_nn"
    attacker: Optional[Attacker] = None

    def __post_init__(self) -> None:
        if not self.client_id:
            raise ConfigError("client_id must be non-empty")


class FLClient:
    """One participant: private train/test data plus a local model.

    The ``model_builder`` callable receives the client's RNG and returns a
    built :class:`Sequential`; every client of an experiment uses the same
    builder so architectures match for aggregation (the paper's shared-model
    assumption).
    """

    def __init__(
        self,
        config: ClientConfig,
        train_set: Dataset,
        test_set: Dataset,
        model_builder: Callable[[np.random.Generator], Sequential],
        rng: np.random.Generator,
        attack_rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.config = config
        self.client_id = config.client_id
        self.train_set = train_set
        self.test_set = test_set
        self.rng = rng
        # Adversarial draws live on their own stream so that enabling an
        # attacker never perturbs the honest training randomness.
        self.attack_rng = attack_rng if attack_rng is not None else rng
        self.model = model_builder(rng)
        self.trainer = LocalTrainer(config.train_config, rng=rng)
        self.rounds_trained = 0
        self.last_train_result: Optional[TrainResult] = None

    @property
    def num_samples(self) -> int:
        """Local training-set size (FedAvg weight)."""
        return len(self.train_set)

    def train_local(self, round_id: int) -> ModelUpdate:
        """Run local epochs and package the resulting update."""
        result = self.trainer.train(self.model, self.train_set)
        self.last_train_result = result
        self.rounds_trained += 1
        update = ModelUpdate(
            client_id=self.client_id,
            weights=self.model.get_weights(),
            num_samples=self.num_samples,
            round_id=round_id,
            reported_accuracy=self.evaluate(),
        )
        if self.config.attacker is not None:
            update = self.config.attacker.poison_update(update, self.attack_rng)
        return update

    def evaluate(self) -> float:
        """Accuracy of the current local model on the private test set."""
        return self.model.evaluate_accuracy(self.test_set.x, self.test_set.y)

    def evaluate_weights(self, weights: dict[str, np.ndarray]) -> float:
        """Fitness of foreign ``weights`` on this client's test set."""
        from repro.fl.evaluation import evaluate_weights

        return evaluate_weights(self.model, weights, self.test_set)

    def apply_global(self, weights: dict[str, np.ndarray]) -> None:
        """Install an aggregated model as the starting point of the next round."""
        self.model.set_weights(weights)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FLClient(id={self.client_id!r}, n={self.num_samples})"
