"""Asynchronous aggregation policies — when to stop waiting.

The paper's core question ("wait or not to wait") is a policy choice:

* :class:`WaitForAll` — synchronous: aggregate only after every expected
  peer has submitted (the conventional FL baseline).
* :class:`WaitForK` — asynchronous: proceed as soon as ``k`` submissions
  (including one's own) are available.
* :class:`Deadline` — proceed when a simulated-time deadline passes,
  whatever has arrived by then (Wilhelmi et al.'s age-of-block flavour).

Policies are pure predicates over (submissions-so-far, cohort size, clock),
so the same objects drive both the centralized orchestrator and the
on-chain coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


class AsyncPolicy:
    """Interface: decide whether aggregation may proceed."""

    def ready(self, submitted: int, expected: int, elapsed: float) -> bool:
        """True when the aggregator should stop waiting.

        ``submitted``: models received so far; ``expected``: cohort size;
        ``elapsed``: seconds since the round opened.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """Short label for logs and benchmark tables."""
        raise NotImplementedError


@dataclass(frozen=True)
class WaitForAll(AsyncPolicy):
    """Synchronous baseline: wait for the full cohort."""

    def ready(self, submitted: int, expected: int, elapsed: float) -> bool:
        return submitted >= expected

    def describe(self) -> str:
        return "wait-for-all"


@dataclass(frozen=True)
class WaitForK(AsyncPolicy):
    """Asynchronous: proceed at ``k`` submissions (capped by cohort size)."""

    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigError(f"k must be >= 1, got {self.k}")

    def ready(self, submitted: int, expected: int, elapsed: float) -> bool:
        return submitted >= min(self.k, expected)

    def describe(self) -> str:
        return f"wait-for-{self.k}"


@dataclass(frozen=True)
class Deadline(AsyncPolicy):
    """Proceed after ``seconds`` elapsed, or when everyone submitted early.

    Requires at least ``min_models`` submissions (default 1) so an empty
    aggregation can never fire.
    """

    seconds: float
    min_models: int = 1

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ConfigError(f"deadline must be positive, got {self.seconds}")
        if self.min_models < 1:
            raise ConfigError(f"min_models must be >= 1, got {self.min_models}")

    def ready(self, submitted: int, expected: int, elapsed: float) -> bool:
        if submitted >= expected:
            return True
        return elapsed >= self.seconds and submitted >= self.min_models

    def describe(self) -> str:
        return f"deadline-{self.seconds:g}s"
