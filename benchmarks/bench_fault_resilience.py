"""X7 — fault resilience: completed-round rate vs injected-fault intensity.

The fault harness (:mod:`repro.faults`) injects seeded transient errors
and timeouts at the gateway seam; the resilient layer absorbs them with
bounded retry/backoff.  This bench sweeps fault intensity over the same
5-peer scenario and measures the completed-round rate with resilience on,
then reruns the mid intensity with resilience *off* to show the faults
are real (the run aborts on the first surfaced error).

Acceptance: with retries on, the mid-intensity profile completes at least
:data:`COMPLETION_FLOOR` (90%) of its rounds; with retries off it aborts.
A final check pins the harness's headline guarantee: a transient-only
plan behind the resilient gateway is *byte-equivalent* to the fault-free
run — same accuracy series, wait times, and per-peer chain heights —
because injected faults fire before the wrapped call takes effect and
retry backoff is budget accounting, never simulated time.

``--smoke`` shrinks the cohort, data, and rounds so the whole sweep runs
in seconds for tier-1.
"""

from __future__ import annotations

from dataclasses import replace

from _bench_util import run_once
from repro.metrics.tables import render_table
from repro.scenarios import FaultSpec, ScenarioContext, fault_scenario, run_scenario

#: Acceptance floor: completed-round rate at mid intensity, retries on.
COMPLETION_FLOOR = 0.9

#: Fault intensities swept (label, per-call error probability).  The
#: probability is split 3:1 between transient errors and timeouts.
INTENSITIES = (("off", 0.0), ("low", 0.05), ("mid", 0.2), ("high", 0.35))

#: The mid-intensity probability the retries-off and equivalence checks use.
MID_INTENSITY = 0.2

_CACHE: dict = {}


def resilience_params(smoke: bool = False) -> dict:
    """The sweep profile for one tier."""
    if smoke:
        return {"size": 3, "rounds": 2, "train": 60, "test": 40}
    return {"size": 5, "rounds": 3, "train": 200, "test": 150}


def _fault_spec(intensity: float, resilience: bool = True) -> FaultSpec:
    return FaultSpec(
        transient_rate=intensity * 0.75,
        timeout_rate=intensity * 0.25,
        resilience=resilience,
    )


def _profile_spec(params: dict, faults: FaultSpec, seed: int):
    base = fault_scenario("bench/faults", faults, seed=seed)
    return replace(
        base,
        rounds=params["rounds"],
        local_epochs=1,
        cohort=replace(
            base.cohort,
            size=params["size"],
            train_samples=params["train"],
            test_samples=params["test"],
        ),
        aggregator_test_samples=params["test"],
    )


def resilience_profile(smoke: bool, seed: int = 42) -> dict:
    """Sweep intensity with retries on; rerun mid intensity with them off.

    Returns per-intensity rows (completion rate, injected faults, retries,
    give-ups) plus the retries-off mid-intensity outcome and the fault-free
    baseline result for the equivalence check.
    """
    key = (smoke, seed)
    if key in _CACHE:
        return _CACHE[key]
    params = resilience_params(smoke)
    context = ScenarioContext()  # every run shares datasets/backbones
    rows = []
    results = {}
    for label, intensity in INTENSITIES:
        result = run_scenario(
            _profile_spec(params, _fault_spec(intensity), seed), context=context
        )
        resilience = result.chain_stats["gateway"]["resilience"]
        rows.append(
            {
                "intensity": label,
                "rate": intensity,
                "completed": result.completed_rounds,
                "rounds": params["rounds"],
                "completion_rate": result.completed_rounds / params["rounds"],
                "injected": resilience["faults_injected"],
                "retries": resilience["retries"],
                "gave_up": resilience["gave_up"],
                "abort_reason": result.abort_reason,
            }
        )
        results[label] = result
    unshielded = run_scenario(
        _profile_spec(params, _fault_spec(MID_INTENSITY, resilience=False), seed),
        context=context,
    )
    profile = {
        "params": params,
        "rows": rows,
        "results": results,
        "unshielded_completed": unshielded.completed_rounds,
        "unshielded_abort": unshielded.abort_reason,
    }
    _CACHE[key] = profile
    return profile


def _print_profile(profile: dict) -> None:
    print()
    print(
        render_table(
            f"X7: completed rounds vs fault intensity "
            f"({profile['params']['size']} peers, {profile['params']['rounds']} rounds)",
            ["intensity", "completed", "injected", "retries", "gave up", "abort"],
            [
                [
                    f"{row['intensity']} ({row['rate']:.2f})",
                    f"{row['completed']}/{row['rounds']}",
                    str(row["injected"]),
                    str(row["retries"]),
                    str(row["gave_up"]),
                    row["abort_reason"] or "-",
                ]
                for row in profile["rows"]
            ],
        )
    )
    print(
        f"retries off @ mid: completed "
        f"{profile['unshielded_completed']}/{profile['params']['rounds']} "
        f"({profile['unshielded_abort'] or 'no abort'})"
    )


def test_retries_keep_rounds_completing(benchmark, smoke):
    """>= 90% completed rounds at mid intensity with the retry layer on."""
    profile = run_once(benchmark, lambda: resilience_profile(smoke))
    _print_profile(profile)
    by_label = {row["intensity"]: row for row in profile["rows"]}
    assert by_label["off"]["abort_reason"] == ""
    assert by_label["off"]["injected"] == 0
    mid = by_label["mid"]
    assert mid["injected"] > 0 and mid["retries"] > 0
    assert mid["completion_rate"] >= COMPLETION_FLOOR, (
        f"expected >= {COMPLETION_FLOOR:.0%} completed rounds at mid "
        f"intensity, got {mid['completion_rate']:.0%} ({mid['abort_reason']})"
    )


def test_without_retries_faults_surface(benchmark, smoke):
    """The same mid-intensity plan aborts the run when resilience is off."""
    profile = run_once(benchmark, lambda: resilience_profile(smoke))
    assert profile["unshielded_completed"] < profile["params"]["rounds"]
    assert profile["unshielded_abort"] != ""


def test_transient_plan_is_byte_equivalent(benchmark, smoke):
    """Mid-intensity transient faults + retries == the fault-free run."""
    profile = run_once(benchmark, lambda: resilience_profile(smoke))
    baseline, shielded = profile["results"]["off"], profile["results"]["mid"]
    assert shielded.client_accuracy == baseline.client_accuracy
    assert shielded.wait_times == baseline.wait_times
    assert shielded.chain_stats["heights"] == baseline.chain_stats["heights"]
    assert shielded.completed_rounds == baseline.completed_rounds
