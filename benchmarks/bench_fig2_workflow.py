"""Figure 2 — the Ethereum workflow: collect -> PoW -> block -> verify.

The paper's Figure 2 is a workflow diagram, not a data plot; its
reproducible content is the four stages a model submission passes through
on the private chain: (a) the data generator's model is shared as a
transaction, (b) PoW selects a leader, (c) the leader forms a block
candidate, (d) the other peers verify and adopt it.  This bench runs one
submission through a three-Geth-equivalent network and reports the
simulated latency of each stage, verifying the pipeline ordering.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from repro.chain.crypto import KeyPair
from repro.chain.network import LatencyModel, P2PNetwork
from repro.chain.node import GenesisSpec, Node, NodeConfig
from repro.chain.pow import ProofOfWork, RetargetRule
from repro.chain.runtime import ContractRuntime
from repro.chain.transaction import Transaction
from repro.contracts import register_all
from repro.metrics.tables import render_table
from repro.utils.events import Simulator


def _run_workflow() -> dict:
    """One tx through the (a)-(d) pipeline; returns stage timestamps."""
    runtime = ContractRuntime()
    register_all(runtime)
    keypairs = [KeyPair.from_seed(f"fig2-{i}") for i in range(3)]
    genesis = GenesisSpec(
        allocations={kp.address: 10**15 for kp in keypairs},
        difficulty=3 * 1000 * 13,  # three 1 kH/s miners, 13 s target interval
    )
    sim = Simulator()
    network = P2PNetwork(
        sim,
        ProofOfWork(np.random.default_rng(0), retarget=RetargetRule(target_interval=13.0)),
        latency=LatencyModel(base=0.05, jitter=0.02),
        rng=np.random.default_rng(1),
    )
    nodes = [Node(kp, genesis, runtime, NodeConfig()) for kp in keypairs]
    for node in nodes:
        network.add_node(node)

    # (a) data generator shares a model-bearing transaction.
    tx = Transaction(
        sender=keypairs[0].address,
        to=keypairs[1].address,
        nonce=0,
        value=1,
        data=b"\x01" * 1024,  # stand-in model payload
    ).sign_with(keypairs[0])
    t_share = sim.now
    network.broadcast_transaction(nodes[0].address, tx)

    # (b)+(c) PoW leader election and block formation.
    network.start_mining()
    t_mined = None
    miner = None
    while t_mined is None:
        if not sim.step():
            raise RuntimeError("simulation drained")
        for node in nodes:
            receipt = node.receipt_of(tx.tx_hash)
            if receipt is not None and node.blocks_mined > 0 and node.store.is_canonical(receipt.block_hash):
                t_mined = sim.now
                miner = node
                break

    # (d) the other peers verify and adopt the block.
    block_hash = miner.receipt_of(tx.tx_hash).block_hash
    t_adopted = None
    while t_adopted is None:
        if all(block_hash in node.store for node in nodes):
            t_adopted = sim.now
            break
        if not sim.step():
            raise RuntimeError("simulation drained before adoption")
    network.stop_mining()
    return {
        "share": t_share,
        "mined": t_mined,
        "adopted": t_adopted,
        "blocks": network.stats.blocks_mined,
    }


def test_fig2_workflow_stages(benchmark):
    """Figure 2 pipeline: stage latencies in simulated seconds."""
    stages = run_once(benchmark, _run_workflow)
    rows = [
        ["(a) model shared (tx broadcast)", f"{stages['share']:.2f}"],
        ["(b)+(c) PoW leader forms block", f"{stages['mined']:.2f}"],
        ["(d) peers verified and adopted", f"{stages['adopted']:.2f}"],
    ]
    print()
    print(render_table("Fig 2: Ethereum workflow stage completion (sim s)", ["stage", "t"], rows))
    assert stages["share"] <= stages["mined"] <= stages["adopted"]
    assert stages["adopted"] - stages["mined"] < 1.0  # gossip is sub-second
    assert stages["mined"] > 0.5  # PoW dominates the pipeline, as on a real chain
    assert stages["blocks"] >= 1
