"""X5 — ledger-gateway batching: round trips per round, raw vs coalesced.

The FL layer reaches the chain only through the :class:`ChainGateway`
protocol (:mod:`repro.chain.gateway`).  This bench runs the same 25-peer
decentralized scenario under both backends and compares the *transport*
round trips the per-round read fan-out costs — registration checks,
visible-submission polls, finalization polls — per communication round:

* ``inprocess`` forwards every FL-layer read to the node (the pre-gateway
  call pattern, bit-for-bit);
* ``batching`` coalesces reads behind a head-keyed cache with a bounded
  staleness window, so the many poll events between two blocks cost one
  round trip per distinct read instead of one each.

Head state is immutable between head changes, so the backends produce
byte-identical results — asserted here over accuracy tables, adopted
combinations, wait times, and the full round-trip request profile.  The
acceptance floor is a >= 3x reduction in contract-call round trips per
round at the 25-peer profile (measured ~30x).

With the out-of-process runtime (:mod:`repro.runtime`) the same seam
also prices the *wire*: ``compare_transports`` reruns the profile with
peers in worker OS processes talking to the ledger over framed sockets,
raw and with worker-side batching.  The measured finding: the runtime's
task protocol already coalesces at the protocol level (views are
memoized per task, weight blobs mirrored content-addressed, training
transactions returned in task results instead of submitted), so the
worker-side reads that remain are essentially all distinct — batching
is *trip-neutral* over the wire, and the coordinator's pushed head
signal is what keeps it neutral instead of negative (without it every
cache validation would cost its own round trip).  All arms are
byte-identical — asserted in-bench.

``--smoke`` keeps the 25-peer cohort (the profile is the point) but
shrinks data and rounds so the comparison runs in seconds for tier-1.
"""

from __future__ import annotations

from dataclasses import replace

from _bench_util import run_once
from repro.metrics.tables import render_table
from repro.scenarios import ScenarioContext, cohort_scenario, run_scenario
from repro.scenarios.spec import replace_axis

#: Acceptance floor: batching must cut contract-call round trips per
#: round by at least this factor at the 25-peer profile.
ROUND_TRIP_FLOOR = 3.0

_CACHE: dict = {}


def gateway_params(smoke: bool = False) -> dict:
    """The 25-peer comparison profile for one tier."""
    if smoke:
        return {"size": 25, "rounds": 2, "train": 80, "test": 60}
    return {"size": 25, "rounds": 3, "train": 200, "test": 150}


def _profile_spec(size: int, rounds: int, train: int, test: int, seed: int):
    base = cohort_scenario(size, seed=seed)
    return replace(
        base,
        rounds=rounds,
        local_epochs=1,
        cohort=replace(base.cohort, train_samples=train, test_samples=test),
        aggregator_test_samples=test,
    )


def compare_gateways(
    size: int, rounds: int, train: int, test: int, seed: int = 42
) -> dict:
    """Run the profile under both backends; assert identical results.

    Returns the per-round transport round-trip counts, their ratio, and
    the request/latency telemetry of both runs.  Raises ``AssertionError``
    if any output differs — the backend must be a pure transport knob.
    """
    key = (size, rounds, train, test, seed)
    if key in _CACHE:
        return _CACHE[key]
    spec = _profile_spec(size, rounds, train, test, seed)
    context = ScenarioContext()  # both runs share datasets/backbones
    raw = run_scenario(spec, context=context)
    batched = run_scenario(replace_axis(spec, "chain.gateway", "batching"), context=context)

    assert raw.client_accuracy == batched.client_accuracy
    assert raw.combination_accuracy == batched.combination_accuracy
    assert raw.wait_times == batched.wait_times
    assert [
        (log.peer_id, log.round_id, log.chosen_combination, log.chosen_accuracy)
        for log in raw.round_logs
    ] == [
        (log.peer_id, log.round_id, log.chosen_combination, log.chosen_accuracy)
        for log in batched.round_logs
    ]

    raw_gw = raw.chain_stats["gateway"]
    batched_gw = batched.chain_stats["gateway"]
    # The FL layer asked for the same reads either way.
    assert (
        raw_gw["requested"]["requested_reads"]
        == batched_gw["requested"]["requested_reads"]
    )
    raw_trips = raw_gw["transport"]["contract_call_round_trips"]
    batched_trips = batched_gw["transport"]["contract_call_round_trips"]
    result = {
        "size": size,
        "rounds": rounds,
        "requested_reads": raw_gw["requested"]["requested_reads"],
        "raw_trips_per_round": raw_trips / rounds,
        "batched_trips_per_round": batched_trips / rounds,
        "trip_reduction": raw_trips / max(batched_trips, 1),
        "cache_hits": batched_gw["requested"]["cache_hits"],
        "head_checks": batched_gw["requested"]["head_checks"],
        "raw_response_bytes": raw_gw["transport"]["response_bytes"],
        "batched_response_bytes": batched_gw["transport"]["response_bytes"],
        "raw": raw_gw,
        "batched": batched_gw,
    }
    _CACHE[key] = result
    return result


def _print_comparison(result: dict) -> None:
    print()
    print(
        render_table(
            f"X5: gateway round trips ({result['size']} peers, {result['rounds']} rounds)",
            ["backend", "trips/round", "head checks", "response MB", "reduction"],
            [
                [
                    "inprocess",
                    f"{result['raw_trips_per_round']:.0f}",
                    "-",
                    f"{result['raw_response_bytes'] / 1e6:.2f}",
                    "1.0x",
                ],
                [
                    "batching",
                    f"{result['batched_trips_per_round']:.0f}",
                    # Served locally in-process; from a pushed new-heads
                    # subscription (not a request) on a remote transport.
                    f"{result['head_checks']}",
                    f"{result['batched_response_bytes'] / 1e6:.2f}",
                    f"{result['trip_reduction']:.1f}x",
                ],
            ],
        )
    )


def compare_transports(
    size: int, rounds: int, train: int, test: int, seed: int = 42
) -> dict:
    """Price the profile across process topologies and backends.

    Three arms: in-process (zero wire), remote (peers in 2 worker
    processes, raw reads over the socket), and remote+batching (the
    worker-side head-keyed cache on top).  Asserts all arms' results
    identical and that batching never *adds* wire round trips — the
    pushed head signal keeps cache validation off the wire.
    """
    key = ("transports", size, rounds, train, test, seed)
    if key in _CACHE:
        return _CACHE[key]
    spec = _profile_spec(size, rounds, train, test, seed)
    context = ScenarioContext()
    local = run_scenario(spec, context=context)
    remote_spec = replace(spec, runtime="multiprocess", runtime_workers=2)
    remote = run_scenario(remote_spec, context=context)
    batched = run_scenario(
        replace_axis(remote_spec, "chain.gateway", "batching"), context=context
    )

    def identity(result):
        return (
            result.model_digests,
            result.client_accuracy,
            result.wait_times,
            result.chain_stats["heights"],
        )

    assert identity(remote) == identity(local)
    assert identity(batched) == identity(local)

    def wire_row(arm, result):
        wire = result.chain_stats["gateway"].get("wire", {})
        return {
            "arm": arm,
            "rpc_trips": wire.get("rpc_round_trips", 0),
            "trips_per_round": wire.get("rpc_round_trips", 0) / rounds,
            "wire_mb": (wire.get("bytes_sent", 0) + wire.get("bytes_received", 0))
            / 1e6,
        }

    rows = [
        wire_row("inprocess", local),
        wire_row("remote", remote),
        wire_row("remote+batching", batched),
    ]
    result = {
        "size": size,
        "rounds": rounds,
        "rows": rows,
        "remote_trips": rows[1]["rpc_trips"],
        "batched_trips": rows[2]["rpc_trips"],
        "trip_reduction": rows[1]["rpc_trips"] / max(rows[2]["rpc_trips"], 1),
    }
    _CACHE[key] = result
    return result


def _print_transports(result: dict) -> None:
    print()
    print(
        render_table(
            f"X5b: transport pricing ({result['size']} peers, {result['rounds']} rounds)",
            ["arm", "rpc trips/round", "wire MB"],
            [
                [row["arm"], f"{row['trips_per_round']:.0f}", f"{row['wire_mb']:.1f}"]
                for row in result["rows"]
            ],
        )
    )


def test_batching_cuts_round_trips(benchmark, smoke):
    """>= 3x fewer contract-call round trips per round, outputs unchanged.

    The equality assertions live inside :func:`compare_gateways`, so this
    single entry point is both the acceptance gate and the equivalence
    proof.  The reduction is deterministic (it counts requests, not
    seconds), so the floor is safe for tier-1.
    """
    result = run_once(benchmark, lambda: compare_gateways(**gateway_params(smoke)))
    _print_comparison(result)
    assert result["trip_reduction"] >= ROUND_TRIP_FLOOR, (
        f"expected >= {ROUND_TRIP_FLOOR}x fewer round trips, "
        f"got {result['trip_reduction']:.2f}x"
    )
    assert result["cache_hits"] > 0


def test_batching_serves_identical_bytes(benchmark, smoke):
    """Cache hits shrink transport response traffic, never its content."""
    result = run_once(benchmark, lambda: compare_gateways(**gateway_params(smoke)))
    assert result["batched_response_bytes"] < result["raw_response_bytes"]
    # Requested-profile parity: the FL layer's read pattern is unchanged.
    assert (
        result["raw"]["requested"]["requested_reads"]
        == result["batched"]["requested"]["requested_reads"]
    )
    assert result["raw"]["requested"]["submits"] == result["batched"]["requested"]["submits"]


def test_remote_transport_priced_and_batched(benchmark, smoke):
    """Remote arms pay real wire; batching never adds trips on top.

    Byte-identity across all three arms is asserted inside
    :func:`compare_transports`; the trip counts are deterministic
    functions of the read pattern, so the bounds need no slack.  The
    protocol-level coalescing (see module docstring) means batching is
    trip-neutral over the wire — the hard contract is that the pushed
    head signal keeps it from costing a validation round trip per read.
    """
    result = run_once(benchmark, lambda: compare_transports(**gateway_params(smoke)))
    _print_transports(result)
    assert result["rows"][0]["rpc_trips"] == 0  # in-process: no wire
    assert result["remote_trips"] > 0
    assert result["rows"][1]["wire_mb"] > 0
    assert result["batched_trips"] <= result["remote_trips"]
