"""X5 — combination-scoring engine: serial vs memoized vs parallel.

ROADMAP item (c): the per-peer combination search dominates wall-clock at
25+ peers.  This bench times the same exhaustive search three ways over
10/25/50-update profiles of the paper's ~62k-parameter SimpleNN:

* **serial** — the seed path (:func:`repro.fl.selection.enumerate_combinations`):
  a full FedAvg recompute per subset plus a full save/restore of the
  scratch model around every evaluation;
* **memoized** — :class:`repro.fl.scoring.CombinationEngine` with
  ``workers=0``: pre-scaled incremental subset sums (one add + scale per
  subset), one lazy save/restore per search, content-addressed score
  memoization;
* **parallel** — the same engine with ``workers=2`` (deterministic
  chunking; results are bit-identical to the other two by contract, which
  this bench asserts on every run).

Larger profiles cap the subset size (25 -> up to quadruples, 50 ->
pairs), the way a fitness-gated deployment bounds its search; the
10-update profile enumerates all 1023 subsets.  Acceptance: >= 3x
memoized-vs-serial at the 25-update profile (typically 5-10x: beyond the
per-subset recompute, the seed path *retains* every subset's aggregated
weight dict — ~7.6 GB at 15275 subsets x 62k parameters; budget that
much RAM for the full tier — where the engine keeps scores only).  The
cache contract is asserted exactly: one real evaluation per distinct
subset, zero new evaluations when ``threshold_filter`` (the fitness
gate) and a re-enumeration hit the same cache, which is what the
reputation rating pass relies on.

``--smoke`` shrinks to one 8-update profile with a relaxed wall-clock
floor (1.3x) so tier-1 can run the same code path in seconds without
flaking on a loaded CI box.
"""

from __future__ import annotations

import time

import numpy as np

from _bench_util import run_once
from repro.data.dataset import Dataset
from repro.fl.aggregation import ModelUpdate
from repro.fl.scoring import CombinationEngine
from repro.fl.selection import enumerate_combinations, threshold_filter
from repro.metrics.tables import render_table
from repro.nn.models import build_simple_nn

_CACHE: dict = {}


def engine_params(smoke: bool = False) -> dict:
    """Profiles: (updates, max subset size, test samples) per row."""
    if smoke:
        return {"profiles": [(8, None, 32)], "floor": 1.3, "floor_at": 8}
    return {
        "profiles": [(10, None, 32), (25, 4, 32), (50, 2, 32)],
        "floor": 3.0,
        "floor_at": 25,
    }


def build_profile(
    n_updates: int, n_test: int, seed: int = 0
) -> tuple[object, Dataset, list[ModelUpdate]]:
    """One peer's search workload: scratch model, test set, updates.

    Updates are distinct perturbations of a shared base model with
    heterogeneous sample counts (so FedAvg coefficients differ per
    subset), matching what a peer sees after one training round.
    """
    rng = np.random.default_rng(seed)
    model = build_simple_nn(np.random.default_rng(seed + 1))
    x = rng.normal(size=(n_test, 3072))
    y = rng.integers(0, 10, size=n_test)
    base = model.get_weights()
    updates = [
        ModelUpdate(
            client_id=f"P{index:02d}",
            weights={key: value + rng.normal(0.0, 0.02, value.shape) for key, value in base.items()},
            num_samples=100 + 10 * index,
        )
        for index in range(n_updates)
    ]
    return model, Dataset(x, y), updates


def compare_engines(
    n_updates: int, max_size, n_test: int = 64, seed: int = 0, workers: int = 2
) -> dict:
    """Time the three implementations on one profile; assert equivalence.

    The equivalence check *is* part of the bench: a speedup that changed
    any member set or accuracy would be a bug, not a win.
    """
    key = (n_updates, max_size, n_test, seed, workers)
    if key in _CACHE:
        return _CACHE[key]
    model, test_set, updates = build_profile(n_updates, n_test, seed)

    start = time.perf_counter()
    serial = enumerate_combinations(updates, model, test_set, max_size=max_size)
    serial_s = time.perf_counter() - start

    engine = CombinationEngine(model, test_set)
    start = time.perf_counter()
    memoized = engine.enumerate(updates, max_size=max_size)
    memoized_s = time.perf_counter() - start

    parallel_engine = CombinationEngine(model, test_set, workers=workers)
    start = time.perf_counter()
    parallel = parallel_engine.enumerate(updates, max_size=max_size)
    parallel_s = time.perf_counter() - start

    reference = [(result.members, result.accuracy) for result in serial]
    assert reference == [(r.members, r.accuracy) for r in memoized], "memoized path diverged"
    assert reference == [(r.members, r.accuracy) for r in parallel], "parallel path diverged"

    # Cache contract: one real evaluation per distinct subset, then the
    # fitness gate and a re-enumeration are served entirely from cache.
    evaluations = engine.cache.stats["misses"]
    engine.threshold_filter(updates, threshold=0.0)
    engine.enumerate(updates, max_size=max_size)
    result = {
        "updates": n_updates,
        "max_size": max_size if max_size is not None else n_updates,
        "subsets": len(serial),
        "serial_s": serial_s,
        "memoized_s": memoized_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / memoized_s,
        "evaluations": evaluations,
        "reuse_evaluations": engine.cache.stats["misses"] - evaluations,
    }
    _CACHE[key] = result
    return result


def solo_reuse_counters(n_updates: int = 6, n_test: int = 48, seed: int = 3) -> dict:
    """The seed's redundant-evaluation profile vs the engine's.

    The seed path scores every solo during enumeration, then again in
    ``threshold_filter``; the engine's second pass is all cache hits.
    """
    model, test_set, updates = build_profile(n_updates, n_test, seed)
    calls = {"count": 0}
    engine = CombinationEngine(
        model, test_set, instrument=lambda key: calls.__setitem__("count", calls["count"] + 1)
    )
    engine.enumerate(updates)
    after_enumerate = calls["count"]
    engine.threshold_filter(updates, threshold=0.0)
    for update in updates:
        engine.solo_accuracy(update)
    # The serial reference pays n extra evaluations for the same gate.
    threshold_filter(updates, model, test_set, threshold=0.0)
    return {
        "subsets": 2 ** n_updates - 1,
        "engine_evaluations": calls["count"],
        "engine_extra_after_enumerate": calls["count"] - after_enumerate,
        "serial_gate_evaluations": n_updates,
    }


def _rows(results: list[dict]) -> list[list[str]]:
    return [
        [
            str(result["updates"]),
            str(result["max_size"]),
            str(result["subsets"]),
            f"{result['serial_s']:.2f}",
            f"{result['memoized_s']:.2f}",
            f"{result['parallel_s']:.2f}",
            f"{result['speedup']:.2f}x",
        ]
        for result in results
    ]


def test_engine_speedup(benchmark, smoke):
    """Memoized incremental scoring beats the seed loop; >= 3x at 25."""
    params = engine_params(smoke)
    results = run_once(
        benchmark,
        lambda: [compare_engines(n, max_size, n_test) for n, max_size, n_test in params["profiles"]],
    )
    print()
    print(
        render_table(
            "X5: combination-scoring engine (exhaustive search)",
            ["updates", "max size", "subsets", "serial s", "memoized s", "parallel s", "speedup"],
            _rows(results),
        )
    )
    for result in results:
        assert result["evaluations"] <= result["subsets"]
        assert result["reuse_evaluations"] == 0, "fitness gate / re-enumeration re-evaluated"
    floor = {result["updates"]: result["speedup"] for result in results}
    assert floor[params["floor_at"]] >= params["floor"], (
        f"expected >= {params['floor']}x at {params['floor_at']} updates, got {floor}"
    )


def test_solo_scores_never_recomputed(benchmark, smoke):
    """Enumeration's solo scores satisfy every later solo lookup."""
    counters = run_once(benchmark, solo_reuse_counters)
    assert counters["engine_evaluations"] == counters["subsets"]
    assert counters["engine_extra_after_enumerate"] == 0
    assert counters["serial_gate_evaluations"] > 0
