"""X6 — out-of-process cohort runtime: wall-clock vs worker count.

PR 4 parallelized the combination search and PR 5 cut the transport-
agnostic :class:`ChainGateway` seam; this bench prices the final step —
running the peers themselves as separate OS processes behind a
wire-served gateway (:mod:`repro.runtime`).  The same cohort scenario
runs in-process and multiprocess at several worker counts, reporting
wall-clock, rounds/sec, speedup, and the wire traffic the topology
costs.

The runtime is a pure process-topology knob: at the same seed the
multiprocess run must reproduce the in-process run byte for byte (final
model weight digests, per-round accuracy tables and adopted
combinations, chain heights, off-chain blob counts).  Every comparison
asserts that equivalence in-bench before it reports a single number —
a speedup that changed the results would be a bug, not a win.

Acceptance (full tier only, and only on >= 4 cores): the 50-peer
profile at 4 workers must finish >= 2x faster than in-process.  Smoke
(``--smoke``, tier-1) trims to the 10-peer profile at 2 workers and
checks equivalence plus the wire-telemetry shape, never wall-clock —
a loaded CI box must not flake tier-1 on a timing.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

from _bench_util import run_once
from repro.metrics.tables import render_table
from repro.scenarios import ScenarioContext, cohort_scenario, run_scenario

#: Acceptance floor: 4 workers must beat in-process by this factor at the
#: 50-peer profile (full tier, >= 4 cores).
SPEEDUP_FLOOR = 2.0

_CACHE: dict = {}


def runtime_params(smoke: bool = False) -> dict:
    """Cohort sizes and worker counts for one tier."""
    if smoke:
        return {
            "sizes": (10,),
            "workers": (2,),
            "rounds": 2,
            "train": 80,
            "test": 60,
        }
    return {
        "sizes": (10, 25, 50),
        "workers": (1, 2, 4),
        "rounds": 3,
        "train": 200,
        "test": 150,
    }


def _profile_spec(size: int, rounds: int, train: int, test: int, seed: int):
    base = cohort_scenario(size, seed=seed)
    return replace(
        base,
        rounds=rounds,
        local_epochs=1,
        cohort=replace(base.cohort, train_samples=train, test_samples=test),
        aggregator_test_samples=test,
    )


def _identity_payload(result) -> dict:
    """Everything the runtime may not change, in one comparable value."""
    return {
        "digests": result.model_digests,
        "logs": [
            (
                log.peer_id,
                log.round_id,
                tuple(log.combination_accuracy.items()),
                log.chosen_combination,
                log.chosen_accuracy,
                log.submitted_at,
                log.aggregated_at,
            )
            for log in result.round_logs
        ],
        "heights": result.chain_stats["heights"],
        "offchain_blobs": result.chain_stats["offchain_blobs"],
        "wait_times": result.wait_times,
    }


def compare_runtimes(
    size: int,
    workers: tuple[int, ...],
    rounds: int,
    train: int,
    test: int,
    seed: int = 42,
) -> dict:
    """Run one cohort profile in-process and at each worker count.

    Returns one row per arm (wall seconds, rounds/sec, speedup vs
    in-process, wire bytes and round trips).  Raises ``AssertionError``
    if any multiprocess arm's outputs differ from the in-process run's.
    """
    key = (size, tuple(workers), rounds, train, test, seed)
    if key in _CACHE:
        return _CACHE[key]
    spec = _profile_spec(size, rounds, train, test, seed)
    context = ScenarioContext()  # all arms share datasets/backbones

    start = time.perf_counter()
    baseline = run_scenario(spec, context=context)
    base_wall = time.perf_counter() - start
    expected = _identity_payload(baseline)

    rows = [
        {
            "arm": "inprocess",
            "workers": 0,
            "wall_s": base_wall,
            "rounds_per_s": rounds / base_wall,
            "speedup": 1.0,
            "wire_mb": 0.0,
            "rpc_trips": 0,
        }
    ]
    for count in workers:
        mp_spec = replace(spec, runtime="multiprocess", runtime_workers=count)
        start = time.perf_counter()
        result = run_scenario(mp_spec, context=context)
        wall = time.perf_counter() - start
        assert _identity_payload(result) == expected, (
            f"multiprocess({count} workers) diverged from in-process "
            f"at the {size}-peer profile"
        )
        wire = result.chain_stats["gateway"]["wire"]
        rows.append(
            {
                "arm": f"multiprocess/{count}",
                "workers": count,
                "wall_s": wall,
                "rounds_per_s": rounds / wall,
                "speedup": base_wall / wall,
                "wire_mb": (wire["bytes_sent"] + wire["bytes_received"]) / 1e6,
                "rpc_trips": wire["rpc_round_trips"],
            }
        )
    result = {"size": size, "rounds": rounds, "rows": rows}
    _CACHE[key] = result
    return result


def _print_comparison(result: dict) -> None:
    print()
    print(
        render_table(
            f"X6: runtime wall-clock ({result['size']} peers, {result['rounds']} rounds)",
            ["arm", "wall s", "rounds/s", "speedup", "wire MB", "rpc trips"],
            [
                [
                    row["arm"],
                    f"{row['wall_s']:.1f}",
                    f"{row['rounds_per_s']:.2f}",
                    f"{row['speedup']:.2f}x",
                    f"{row['wire_mb']:.1f}",
                    f"{row['rpc_trips']}",
                ]
                for row in result["rows"]
            ],
        )
    )


def test_multiprocess_byte_identical(benchmark, smoke):
    """Every arm reproduces the in-process run exactly (asserted in-bench).

    The equality assertions live inside :func:`compare_runtimes`, so the
    smallest profile is both the timing row and the equivalence proof.
    """
    params = runtime_params(smoke)
    result = run_once(
        benchmark,
        lambda: compare_runtimes(
            params["sizes"][0],
            params["workers"],
            params["rounds"],
            params["train"],
            params["test"],
        ),
    )
    _print_comparison(result)
    mp_rows = [row for row in result["rows"] if row["workers"]]
    assert mp_rows, "no multiprocess arm ran"
    for row in mp_rows:
        assert row["rpc_trips"] > 0 and row["wire_mb"] > 0


def test_speedup_at_scale(benchmark, smoke):
    """>= 2x at 50 peers / 4 workers — full tier on >= 4 cores only.

    Smoke runs the comparison for coverage but skips the wall-clock
    floor: timing assertions on shared CI runners flake, and the smoke
    profile is too small to amortize worker start-up anyway.
    """
    params = runtime_params(smoke)
    size = params["sizes"][-1]
    result = run_once(
        benchmark,
        lambda: compare_runtimes(
            size,
            params["workers"],
            params["rounds"],
            params["train"],
            params["test"],
        ),
    )
    _print_comparison(result)
    if smoke or (os.cpu_count() or 1) < 4:
        return  # coverage-only tier: equivalence already asserted in-bench
    best = max(row["speedup"] for row in result["rows"] if row["workers"] >= 4)
    assert best >= SPEEDUP_FLOOR, (
        f"expected >= {SPEEDUP_FLOOR}x wall-clock speedup at the "
        f"{size}-peer profile with 4 workers, got {best:.2f}x"
    )
