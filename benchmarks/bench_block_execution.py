"""X4 — block execution: journaled state + one-shot validation vs the seed.

The seed's block hot path was O(accounts x txs): every transaction took a
deep snapshot of the *entire* world state for rollback, every candidate
build deep-copied the state, every state root re-hashed every account, and
every transaction's signature was verified four times on its lifetime
(mempool admission, candidate execution, block validation, import
execution).  The journaled pipeline pays O(touched) undo records per
transaction, a copy-on-write overlay per candidate, per-account cached
hashes for incremental roots, and exactly one crypto verification per
transaction lifetime.

Reported: wall-clock build+import speedup at the 200-account/50-tx-block
profile (acceptance: >= 3x vs the seed call pattern), plus the
deterministic counters that prove where the win comes from —
``VALIDATION_STATS`` (one signature verification per tx) and
``STATE_STATS`` (journal entries ~ touched entries, re-hashes ~ dirty
accounts, rollback cost independent of state size).

Run fast: ``pytest benchmarks/bench_block_execution.py --smoke``
or directly: ``python benchmarks/bench_block_execution.py --smoke``.
"""

from __future__ import annotations

import time

from _bench_util import run_once
from repro.chain.crypto import KeyPair, recover_check
from repro.chain.gas import intrinsic_gas
from repro.chain.node import GenesisSpec, Node
from repro.chain.runtime import ContractRuntime
from repro.chain.state import STATE_STATS, WorldState
from repro.chain.transaction import Transaction, VALIDATION_STATS
from repro.metrics.tables import render_table
from repro.utils.hashing import hash_object, sha256_bytes
from repro.utils.serialization import canonical_dumps

BLOCK_REWARD = 2_000_000_000


def execution_params(smoke: bool) -> dict:
    """Profile sizing; ``--smoke`` shrinks it to ~1s."""
    if smoke:
        return dict(n_accounts=50, txs_per_block=10, n_blocks=3, repeats=2)
    return dict(n_accounts=200, txs_per_block=50, n_blocks=4, repeats=3)


def _cohort(n_accounts: int) -> list[KeyPair]:
    return [KeyPair.from_seed(f"bench-block-{i}") for i in range(n_accounts)]


def _genesis(keypairs: list[KeyPair]) -> GenesisSpec:
    return GenesisSpec(allocations={kp.address: 10**15 for kp in keypairs})


def _transfer_blocks(keypairs: list[KeyPair], txs_per_block: int, n_blocks: int) -> list[list[Transaction]]:
    """``n_blocks`` batches of signed transfers, round-robin over senders."""
    nonces = {kp.address: 0 for kp in keypairs}
    blocks = []
    cursor = 0
    for _ in range(n_blocks):
        txs = []
        for _ in range(txs_per_block):
            sender = keypairs[cursor % len(keypairs)]
            recipient = keypairs[(cursor + 1) % len(keypairs)]
            tx = Transaction(
                sender=sender.address,
                to=recipient.address,
                nonce=nonces[sender.address],
                value=1,
                data=b"\x01" * 64,
            ).sign_with(sender)
            nonces[sender.address] += 1
            txs.append(tx)
            cursor += 1
        blocks.append(txs)
    return blocks


def _cold_clone(tx_blocks: list[list[Transaction]]) -> list[list[Transaction]]:
    """Fresh Transaction objects with empty memo caches (per-repeat reset)."""
    return [[Transaction.from_dict(tx.to_dict()) for tx in txs] for txs in tx_blocks]


# ---------------------------------------------------------------------------
# Seed call pattern, reproduced byte for byte
# ---------------------------------------------------------------------------


def _seed_verify(tx: Transaction) -> bool:
    """The seed's ``verify_signature``: full payload re-encode + crypto,
    with no memoization (every call pays the whole cost again)."""
    payload = canonical_dumps(
        {
            "sender": tx.sender,
            "to": tx.to,
            "nonce": tx.nonce,
            "value": tx.value,
            "gas_limit": tx.gas_limit,
            "gas_price": tx.gas_price,
            "method": tx.method,
            "args": tx.args,
            "data": tx.data,
        }
    )
    return recover_check(tx.public_bundle, sha256_bytes(payload), tx.signature, tx.sender)


def _seed_root(state: WorldState) -> str:
    """The seed's ``state_root``: one hash over the entire state."""
    return hash_object(
        {address: state.account(address).to_dict() for address in state.addresses()}
    )


def _seed_execute_tx(state: WorldState, tx: Transaction, miner: str) -> None:
    """The seed's ``_execute_transaction`` for a transfer: signature
    re-verified, then a deep snapshot of the whole state before the value
    move (the O(accounts) rollback reserve every transaction paid)."""
    assert _seed_verify(tx)
    assert state.nonce_of(tx.sender) == tx.nonce
    base_cost = intrinsic_gas(tx.data)
    assert state.balance_of(tx.sender) >= tx.max_cost()
    state.debit(tx.sender, tx.gas_limit * tx.gas_price)
    state.bump_nonce(tx.sender)
    snapshot = state.snapshot()
    try:
        state.transfer(tx.sender, tx.to, tx.value)
    except Exception:  # pragma: no cover - transfers in this profile succeed
        state.restore(snapshot)
    state.credit(tx.sender, (tx.gas_limit - base_cost) * tx.gas_price)
    state.credit(miner, base_cost * tx.gas_price)


def seed_pattern_run(genesis: GenesisSpec, tx_blocks: list[list[Transaction]], miner: str) -> dict:
    """Build + import every block with the seed's exact call pattern.

    Per block: one admission verify per tx, a full ``state.copy()`` for the
    candidate, one execution on the scratch (verify + deep snapshot per tx)
    and a full-state root; then validation re-verifies every signature and
    the import re-executes on the canonical state with another deep
    snapshot per tx and another full-state root.
    """
    state = genesis.build_state()
    started = time.perf_counter()
    for txs in tx_blocks:
        for tx in txs:  # mempool admission
            assert _seed_verify(tx)
        scratch = state.copy()  # candidate scratch
        for tx in txs:
            _seed_execute_tx(scratch, tx, miner)
        scratch.credit(miner, BLOCK_REWARD)
        candidate_root = _seed_root(scratch)
        for tx in txs:  # validate_block
            assert _seed_verify(tx)
        for tx in txs:  # import execution
            _seed_execute_tx(state, tx, miner)
        state.credit(miner, BLOCK_REWARD)
        assert _seed_root(state) == candidate_root
    return {"seconds": time.perf_counter() - started}


# ---------------------------------------------------------------------------
# Journaled pipeline (the real Node)
# ---------------------------------------------------------------------------


def journaled_run(keypairs: list[KeyPair], genesis: GenesisSpec, tx_blocks: list[list[Transaction]]) -> dict:
    """Build + import every block through the actual :class:`Node`."""
    node = Node(keypairs[0], genesis, ContractRuntime())
    STATE_STATS.reset()
    VALIDATION_STATS.reset()
    started = time.perf_counter()
    for txs in tx_blocks:
        for tx in txs:
            node.submit_transaction(tx)
        block = node.build_block_candidate(node.head.header.timestamp + 13.0, difficulty=1)
        node.seal_and_import(block, nonce=0)
    seconds = time.perf_counter() - started
    n_txs = sum(len(txs) for txs in tx_blocks)
    assert node.height == len(tx_blocks)
    assert len(node.receipts) == n_txs
    assert all(receipt.success for receipt in node.receipts.values())
    return {
        "seconds": seconds,
        "validation": VALIDATION_STATS.as_dict(),
        "state": STATE_STATS.as_dict(),
    }


def compare_block_execution(n_accounts: int, txs_per_block: int, n_blocks: int, repeats: int) -> dict:
    """Best-of-``repeats`` wall-clock comparison on identical transactions."""
    keypairs = _cohort(n_accounts)
    genesis = _genesis(keypairs)
    tx_blocks = _transfer_blocks(keypairs, txs_per_block, n_blocks)

    # Warm both paths once at tiny scale (allocator/caches).
    warm = _cold_clone(tx_blocks[:1])
    seed_pattern_run(genesis, [warm[0][:2]], keypairs[0].address)
    journaled_run(keypairs, genesis, _cold_clone(tx_blocks[:1]))

    seed_seconds = min(
        seed_pattern_run(genesis, _cold_clone(tx_blocks), keypairs[0].address)["seconds"]
        for _ in range(repeats)
    )
    journaled_runs = [
        journaled_run(keypairs, genesis, _cold_clone(tx_blocks)) for _ in range(repeats)
    ]
    journaled_seconds = min(run["seconds"] for run in journaled_runs)
    return {
        "n_accounts": n_accounts,
        "txs_per_block": txs_per_block,
        "n_blocks": n_blocks,
        "n_txs": txs_per_block * n_blocks,
        "seed_seconds": seed_seconds,
        "journaled_seconds": journaled_seconds,
        "speedup": seed_seconds / journaled_seconds,
        # Counters are identical across repeats (deterministic workload).
        "validation": journaled_runs[-1]["validation"],
        "state": journaled_runs[-1]["state"],
    }


def rollback_profile(n_accounts: int, touches: int = 3) -> dict:
    """Journal rollback cost for ``touches`` writes on an ``n_accounts``
    state — the counters prove it does not scale with state size."""
    keypairs = _cohort(n_accounts)
    state = _genesis(keypairs).build_state()
    state.flatten_journal()
    STATE_STATS.reset()
    mark = state.checkpoint()
    for kp in keypairs[:touches]:
        state.credit(kp.address, 1)
    state.rollback(mark)
    return {
        "n_accounts": n_accounts,
        "touches": touches,
        "journal_entries": STATE_STATS.journal_entries,
        "entries_reverted": STATE_STATS.entries_reverted,
    }


def _check_counters(result: dict) -> None:
    """The deterministic contract behind the wall-clock number."""
    n_txs = result["n_txs"]
    validation = result["validation"]
    state = result["state"]
    # One crypto verification per transaction lifetime; the other three
    # verification sites (candidate execution, block validation, import
    # execution) all hit the memo.
    assert validation["signatures_verified"] == n_txs
    assert validation["signature_cache_hits"] >= 2 * n_txs
    # Rollback reserve ~ touched entries: a transfer writes a bounded
    # handful of undo records, executed twice (candidate + import).
    assert state["journal_entries"] <= 16 * n_txs + 4 * (result["n_accounts"] + result["n_blocks"])
    # Re-rooting ~ dirty accounts: the base cache fills once, then each
    # block re-hashes only the accounts it touched (not all accounts,
    # twice per block, as the seed did).
    per_block_touched = 2 * (result["txs_per_block"] + 2)
    assert state["accounts_hashed"] <= result["n_accounts"] + 3 * result["n_blocks"] * per_block_touched


def _report(result: dict, rollback_small: dict, rollback_large: dict) -> None:
    print()
    print(
        render_table(
            f"X4: block build+import ({result['n_accounts']} accounts, "
            f"{result['txs_per_block']} txs/block, {result['n_blocks']} blocks)",
            ["pipeline", "seconds"],
            [
                ["seed (deep-copy rollback)", f"{result['seed_seconds']:.4f}"],
                ["journaled + one-shot validation", f"{result['journaled_seconds']:.4f}"],
            ],
        )
    )
    print(f"speedup: {result['speedup']:.2f}x  (acceptance floor: 3.00x at full profile)")
    print(
        f"validation: {result['validation']['signatures_verified']} crypto checks "
        f"for {result['n_txs']} txs ({result['validation']['signature_cache_hits']} cache hits)"
    )
    print(
        f"state: {result['state']['journal_entries']} journal entries, "
        f"{result['state']['accounts_hashed']} account re-hashes, "
        f"{result['state']['rollbacks']} rollbacks"
    )
    print(
        f"rollback of {rollback_small['touches']} touches reverts "
        f"{rollback_small['entries_reverted']} entries at {rollback_small['n_accounts']} accounts "
        f"and {rollback_large['entries_reverted']} at {rollback_large['n_accounts']} accounts"
    )


def test_block_build_import_speedup(benchmark, smoke):
    """Journaled block execution beats the seed call pattern (>= 3x full,
    >= 2x smoke) with the counters proving the asymptotic claims."""
    params = execution_params(smoke)
    result = run_once(benchmark, lambda: compare_block_execution(**params))
    rollback_small = rollback_profile(64)
    rollback_large = rollback_profile(1024)
    _report(result, rollback_small, rollback_large)
    assert result["speedup"] >= (2.0 if smoke else 3.0)
    _check_counters(result)
    # Rollback cost is a function of touched entries only, not state size.
    assert rollback_small["entries_reverted"] == rollback_large["entries_reverted"]
    assert rollback_large["entries_reverted"] <= 2 * rollback_large["touches"]


def test_rollback_cost_independent_of_state_size(smoke):
    """Undoing k touches replays the same journal entries at any scale."""
    profiles = [rollback_profile(n, touches=5) for n in (32, 256, 2048)]
    reverted = {profile["entries_reverted"] for profile in profiles}
    assert len(reverted) == 1
    assert reverted.pop() <= 10


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny fast mode")
    args = parser.parse_args()
    outcome = compare_block_execution(**execution_params(args.smoke))
    _report(outcome, rollback_profile(64), rollback_profile(1024))
    _check_counters(outcome)
