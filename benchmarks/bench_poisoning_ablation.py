"""X3 — abnormal-model exclusion: 'consider' vs plain FedAvg under attack.

The paper's conclusion claims the consider-style selection is "a more
effective strategy" because it excludes abnormal (poisoned or noisy)
models before aggregation.  This bench injects a label-flip attacker into
one of the three clients and compares aggregators:

* plain FedAvg (the vulnerable baseline),
* the consider combination search (the paper's defense), and
* robust baselines (coordinate median, trimmed mean) for context.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from repro.core.config import default_config
from repro.core.experiment import _build_datasets, _model_builder
from repro.fl.aggregation import ModelUpdate, coordinate_median, fedavg, trimmed_mean
from repro.fl.evaluation import evaluate_weights
from repro.fl.poisoning import LabelFlipAttacker, NoiseAttacker
from repro.fl.selection import best_combination
from repro.fl.trainer import LocalTrainer
from repro.metrics.tables import render_table
from repro.utils.rng import RngFactory

_CACHE: dict = {}


def _attack_run(attacker_kind: str = "label_flip") -> dict:
    """Train A, B honestly and C under attack; score each aggregator."""
    if attacker_kind in _CACHE:
        return _CACHE[attacker_kind]
    config = default_config("simple_nn")
    rngs = RngFactory(config.seed)
    factory, train_sets, test_sets, aggregator_test = _build_datasets(config, rngs)
    builder = _model_builder(config, factory)
    init_seed = rngs.integers("model-init")

    attack_rng = rngs.get("attack")
    updates = []
    for client_id in config.client_ids:
        dataset = train_sets[client_id]
        if client_id == "C" and attacker_kind == "label_flip":
            dataset = LabelFlipAttacker(flip_fraction=1.0, target_class=0).poison_dataset(
                dataset, attack_rng
            )
        model = builder(np.random.default_rng(init_seed))
        trainer = LocalTrainer(config.train_config(), rng=rngs.get("train", client_id))
        for _ in range(3):  # three rounds of solo training pre-aggregation
            trainer.train(model, dataset)
        update = ModelUpdate(
            client_id=client_id, weights=model.get_weights(), num_samples=len(dataset)
        )
        if client_id == "C" and attacker_kind == "noise":
            update = NoiseAttacker(noise_std=1.0).poison_update(update, attack_rng)
        updates.append(update)

    scratch = builder(np.random.default_rng(init_seed))
    scores = {
        "fedavg (not consider)": evaluate_weights(scratch, fedavg(updates), aggregator_test),
        "median": evaluate_weights(scratch, coordinate_median(updates), aggregator_test),
        "trimmed_mean": evaluate_weights(scratch, trimmed_mean(updates), aggregator_test),
    }
    best = best_combination(updates, scratch, aggregator_test)
    scores["consider (best combo)"] = best.accuracy
    result = {"scores": scores, "chosen": best.members}
    _CACHE[attacker_kind] = result
    return result


def test_poisoning_label_flip(benchmark):
    """Label-flip attacker: consider excludes it and beats plain FedAvg."""
    result = run_once(benchmark, lambda: _attack_run("label_flip"))
    scores, chosen = result["scores"], result["chosen"]
    print()
    print(
        render_table(
            "X3: aggregator accuracy with label-flip attacker at client C",
            ["aggregator", "accuracy"],
            [[name, f"{value:.4f}"] for name, value in sorted(scores.items())],
        )
    )
    print(f"consider chose combination: {','.join(chosen)}")
    assert "C" not in chosen, "consider failed to exclude the attacker"
    assert scores["consider (best combo)"] > scores["fedavg (not consider)"]


def test_poisoning_noise(benchmark):
    """Noisy-model (unintended abnormality): consider still filters it."""
    result = run_once(benchmark, lambda: _attack_run("noise"))
    scores, chosen = result["scores"], result["chosen"]
    print()
    print(
        render_table(
            "X3b: aggregator accuracy with noisy model at client C",
            ["aggregator", "accuracy"],
            [[name, f"{value:.4f}"] for name, value in sorted(scores.items())],
        )
    )
    assert "C" not in chosen
    assert scores["consider (best combo)"] >= scores["fedavg (not consider)"]


def test_robust_baselines_help_but_consider_wins(benchmark):
    """Median/trimmed-mean beat FedAvg under attack; consider tops both."""
    result = run_once(benchmark, lambda: _attack_run("label_flip"))
    scores = result["scores"]
    assert scores["median"] >= scores["fedavg (not consider)"] - 0.02
    assert scores["consider (best combo)"] >= scores["median"] - 0.02
