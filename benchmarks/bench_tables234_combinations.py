"""Tables II, III, IV — Blockchain-based FL: accuracy per model combination.

Regenerates the paper's per-client combination tables: for each peer (A, B,
C), the per-round accuracy of every model combination it could aggregate
(its own model, each pair, and the full set), evaluated on that peer's
private test set, with the peer adopting the best combination each round.

Shape criteria (paper):
* SimpleNN — all non-trivial combinations track each other closely; the
  solo model is never dramatically better (asynchronous aggregation is
  essentially free for simple models).
* Efficient-B0 — the full combination wins or ties in most rounds; solo
  clearly trails early (waiting buys precision for complex models).
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from repro.metrics.tables import format_combination_table

MODEL_LABELS = {"simple_nn": "Simple NN", "efficientnet_b0_sim": "Efficient-B0"}
PAPER_TABLE_OF_PEER = {"A": "Table II", "B": "Table III", "C": "Table IV"}


def _combination_block(experiments, model_kind: str, peer_id: str) -> str:
    result = experiments.decentralized(model_kind)
    return format_combination_table(
        MODEL_LABELS[model_kind],
        peer_id,
        result.combination_accuracy[peer_id],
        title_prefix=f"{PAPER_TABLE_OF_PEER[peer_id]}: Blockchain-based FL",
    )


def _check_shapes(result, peer_id: str, model_kind: str) -> None:
    table = result.combination_accuracy[peer_id]
    full = table["A,B,C"]
    solo = table[peer_id]
    pairs = [series for combo, series in table.items() if len(combo.split(",")) == 2]
    if model_kind == "simple_nn":
        # All aggregations land in the same neighbourhood by round 10.
        finals = [series[-1] for series in table.values()]
        assert max(finals) - min(finals) < 0.06
    else:
        # Full set wins round 1 decisively and never loses badly.
        assert full[0] >= max(series[0] for series in pairs) - 0.02
        assert full[0] > solo[0]
        mean_pair_gap = np.mean([full[-1] - series[-1] for series in pairs])
        assert mean_pair_gap > -0.02  # pairs within ~2pp of full at the end


def _make_bench(peer_id: str, model_kind: str):
    def bench(benchmark, experiments):
        text = run_once(benchmark, lambda: _combination_block(experiments, model_kind, peer_id))
        print()
        print(text)
        _check_shapes(experiments.decentralized(model_kind), peer_id, model_kind)

    bench.__name__ = f"test_{PAPER_TABLE_OF_PEER[peer_id].lower().replace(' ', '')}_{model_kind}"
    bench.__doc__ = f"{PAPER_TABLE_OF_PEER[peer_id]} ({model_kind}) — client {peer_id}."
    return bench


test_table2_client_a_simple = _make_bench("A", "simple_nn")
test_table2_client_a_efficientnet = _make_bench("A", "efficientnet_b0_sim")
test_table3_client_b_simple = _make_bench("B", "simple_nn")
test_table3_client_b_efficientnet = _make_bench("B", "efficientnet_b0_sim")
test_table4_client_c_simple = _make_bench("C", "simple_nn")
test_table4_client_c_efficientnet = _make_bench("C", "efficientnet_b0_sim")


def test_tables_full_set_usually_best_for_complex(experiments):
    """Paper: 'aggregating all models consistently yields the highest
    accuracy in most rounds' for Efficient-B0."""
    result = experiments.decentralized("efficientnet_b0_sim")
    for peer_id in ("A", "B", "C"):
        table = result.combination_accuracy[peer_id]
        full = np.array(table["A,B,C"])
        best_other = np.max(
            [series for combo, series in table.items() if combo != "A,B,C"], axis=0
        )
        wins_or_ties = (full >= best_other - 0.005).sum()
        assert wins_or_ties >= len(full) // 2, (
            f"{peer_id}: full set best in only {wins_or_ties}/{len(full)} rounds"
        )


def test_tables_solo_not_best_for_complex(experiments):
    """Paper: 'using solely their local models consistently results in
    lower or sub-optimal performance' for complex models."""
    result = experiments.decentralized("efficientnet_b0_sim")
    for peer_id in ("A", "B", "C"):
        table = result.combination_accuracy[peer_id]
        solo_mean = np.mean(table[peer_id])
        full_mean = np.mean(table["A,B,C"])
        assert full_mean >= solo_mean - 0.002
