"""X3 — commitment pipeline: cached single-encoding vs the seed's re-marshalling.

The seed paid three full weight serializations per local model on the
submit path (off-chain put, commitment-hash check, size probe) and one full
deserialization per (peer, fetch) on the read path.  The content-addressed
pipeline pays one encode per model — :class:`~repro.nn.serialize.WeightArchive`
answers payload/hash/size from a single encoding — and at most one decode
per distinct blob ever, via the store's decoded-archive cache.

Reported: serializations-per-round on a real decentralized round, and the
wall-clock speedup of the commit/fetch hot path (acceptance: >= 2x).

Run fast: ``pytest benchmarks/bench_commitment_pipeline.py --smoke``
or directly: ``python benchmarks/bench_commitment_pipeline.py --smoke``.
"""

from __future__ import annotations

import time

import numpy as np

from _bench_util import run_once
from repro.core.offchain import OffchainStore
from repro.nn.serialize import (
    SERIALIZATION_STATS,
    WeightArchive,
    weights_from_bytes,
    weights_hash,
    weights_size_bytes,
    weights_to_bytes,
)
from repro.metrics.tables import render_table
from repro.utils.hashing import keccak_like

def pipeline_params(smoke: bool) -> dict:
    """compare_pipelines sizing; ``--smoke`` shrinks it to ~1s."""
    if smoke:
        return dict(n_models=3, n_fetchers=3, repeats=2)
    return dict(n_models=6, n_fetchers=6, repeats=3)


#: Shapes roughly matching the paper's SimpleNN head (~62k params).
_WEIGHT_SHAPES = {
    "conv/W": (3, 3, 8, 16),
    "conv/b": (16,),
    "dense/W": (784, 64),
    "dense/b": (64,),
    "out/W": (64, 10),
    "out/b": (10,),
}


def make_weight_sets(n_models: int, seed: int = 0) -> list[dict]:
    """``n_models`` distinct weight dicts of realistic commitment size."""
    rng = np.random.default_rng(seed)
    return [
        {key: rng.normal(size=shape) for key, shape in _WEIGHT_SHAPES.items()}
        for _ in range(n_models)
    ]


def legacy_commit_fetch(weight_sets: list[dict], n_fetchers: int) -> dict:
    """The seed call pattern, reproduced byte for byte.

    Per model: raw put (encode #1), commitment-hash verification
    (encode #2), size probe (encode #3).  Per (fetcher, model): integrity
    re-hash plus a full decode.
    """
    store = OffchainStore()
    started = time.perf_counter()
    keys = []
    for weights in weight_sets:
        key = store.put(weights_to_bytes(weights))
        assert key == weights_hash(weights)
        weights_size_bytes(weights)
        keys.append(key)
    for _ in range(n_fetchers):
        for key in keys:
            payload = store.get(key)
            assert keccak_like(payload) == key
            weights_from_bytes(payload)
    return {"seconds": time.perf_counter() - started, "store": store}


def cached_commit_fetch(weight_sets: list[dict], n_fetchers: int) -> dict:
    """The archive pipeline: one encode per model, cached fetches."""
    store = OffchainStore()
    started = time.perf_counter()
    keys = []
    for weights in weight_sets:
        archive = WeightArchive.from_weights(weights)
        key = store.put_archive(archive)
        archive.hash, archive.size  # commitment + telemetry: already paid
        keys.append(key)
    for _ in range(n_fetchers):
        for key in keys:
            store.get_weights(key)
    return {"seconds": time.perf_counter() - started, "store": store}


def compare_pipelines(n_models: int = 6, n_fetchers: int = 6, repeats: int = 3) -> dict:
    """Best-of-``repeats`` wall-clock comparison of both pipelines."""
    weight_sets = make_weight_sets(n_models)
    # Warm both paths once so allocator effects don't skew the first timing.
    legacy_commit_fetch(weight_sets[:1], 1)
    cached_commit_fetch(weight_sets[:1], 1)

    SERIALIZATION_STATS.reset()
    legacy_seconds = min(
        legacy_commit_fetch(weight_sets, n_fetchers)["seconds"] for _ in range(repeats)
    )
    legacy_marshalling = SERIALIZATION_STATS.as_dict()

    SERIALIZATION_STATS.reset()
    cached_runs = [cached_commit_fetch(weight_sets, n_fetchers) for _ in range(repeats)]
    cached_seconds = min(run["seconds"] for run in cached_runs)
    cached_marshalling = SERIALIZATION_STATS.as_dict()

    return {
        "n_models": n_models,
        "n_fetchers": n_fetchers,
        "legacy_seconds": legacy_seconds,
        "cached_seconds": cached_seconds,
        "speedup": legacy_seconds / cached_seconds,
        "legacy_encodes_per_model": legacy_marshalling["encodes"] / (repeats * n_models),
        "cached_encodes_per_model": cached_marshalling["encodes"] / (repeats * n_models),
        "cached_store": cached_runs[-1]["store"].marshalling_stats(),
    }


def codec_comparison(n_models: int = 4, repeats: int = 3) -> dict:
    """Constant-factor win of the binary v2 codec over JSON/base64 v1.

    Times an encode+decode round trip per model for each format version
    (best of ``repeats``) and reports the payload-size ratio, which is
    deterministic: v1 pays ~33% base64 inflation plus JSON framing on
    every array byte.
    """
    weight_sets = make_weight_sets(n_models, seed=1)

    def run(version: int) -> tuple[float, int]:
        started = time.perf_counter()
        total_bytes = 0
        for weights in weight_sets:
            payload = weights_to_bytes(weights, version=version)
            total_bytes += len(payload)
            weights_from_bytes(payload)
        return time.perf_counter() - started, total_bytes

    v1_runs = [run(1) for _ in range(repeats)]
    v2_runs = [run(2) for _ in range(repeats)]
    v1_seconds = min(seconds for seconds, _ in v1_runs)
    v2_seconds = min(seconds for seconds, _ in v2_runs)
    v1_bytes, v2_bytes = v1_runs[0][1], v2_runs[0][1]
    return {
        "v1_seconds": v1_seconds,
        "v2_seconds": v2_seconds,
        "codec_speedup": v1_seconds / v2_seconds,
        "v1_bytes": v1_bytes,
        "v2_bytes": v2_bytes,
        "size_ratio": v2_bytes / v1_bytes,
    }


def round_serialization_profile(rounds: int = 1) -> dict:
    """Serializations per model per round on a real decentralized round."""
    import sys
    from pathlib import Path

    tests_dir = str(Path(__file__).resolve().parent.parent / "tests")
    if tests_dir not in sys.path:
        sys.path.insert(0, tests_dir)
    from test_core_decentralized import make_driver

    driver = make_driver(rounds=rounds)
    driver.deploy_contracts()
    SERIALIZATION_STATS.reset()
    for round_id in range(1, rounds + 1):
        driver.run_round(round_id)
    n_models = len(driver.peers) * rounds
    return {
        "models_committed": n_models,
        "encodes": SERIALIZATION_STATS.encodes,
        "encodes_per_model": SERIALIZATION_STATS.encodes / n_models,
        "store": driver.offchain.marshalling_stats(),
    }


def _report(result: dict, profile: dict) -> None:
    print()
    print(
        render_table(
            "X3: commitment pipeline (commit + fetch hot path)",
            ["pipeline", "seconds", "encodes/model"],
            [
                ["seed (re-marshalling)", f"{result['legacy_seconds']:.4f}", f"{result['legacy_encodes_per_model']:.1f}"],
                ["cached archive", f"{result['cached_seconds']:.4f}", f"{result['cached_encodes_per_model']:.1f}"],
            ],
        )
    )
    print(f"speedup: {result['speedup']:.2f}x  (acceptance floor: 2.00x)")
    print(
        f"live round: {profile['encodes']} encodes for {profile['models_committed']} models "
        f"({profile['encodes_per_model']:.2f}/model), store={profile['store']}"
    )
    codec = codec_comparison()
    print(
        f"codec v2 vs v1: {codec['codec_speedup']:.2f}x encode+decode, "
        f"{codec['v2_bytes']}B vs {codec['v1_bytes']}B "
        f"({codec['size_ratio']:.2f}x size)"
    )


def test_commit_fetch_speedup(benchmark, smoke):
    """The cached pipeline beats the seed call pattern by >= 2x wall-clock."""
    result = run_once(benchmark, lambda: compare_pipelines(**pipeline_params(smoke)))
    profile = round_serialization_profile(rounds=1 if smoke else 2)
    _report(result, profile)
    assert result["speedup"] >= 2.0
    assert result["cached_encodes_per_model"] == 1.0
    assert result["legacy_encodes_per_model"] >= 3.0


def test_live_round_serializes_once_per_model(smoke):
    """A real decentralized round encodes each committed model exactly once."""
    profile = round_serialization_profile(rounds=1)
    assert profile["encodes_per_model"] == 1.0
    assert profile["store"]["deserializations"] == 0  # all fetches cache-hit


def test_codec_v2_beats_v1(smoke):
    """The raw-buffer codec is strictly smaller (deterministic) and at
    least as fast as the JSON/base64 encoding on realistic weights."""
    codec = codec_comparison(n_models=2 if smoke else 4)
    assert codec["size_ratio"] < 0.8
    assert codec["codec_speedup"] > 1.0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny fast mode")
    args = parser.parse_args()
    _report(
        compare_pipelines(**pipeline_params(args.smoke)),
        round_serialization_profile(rounds=1 if args.smoke else 2),
    )
