"""Shared fixtures for the benchmark harness.

Each bench regenerates one of the paper's tables or figures.  Experiments
are deterministic functions of their config, so a session-scoped cache lets
the table bench and the figure bench of the same experiment share one run
(exactly like the paper derives Table I and Figure 3 from the same logs).

Benchmarks that wrap a full federated experiment use
``benchmark.pedantic(..., rounds=1, iterations=1)`` — the experiment is the
unit of work being timed, and repeating a deterministic 10-round training
run adds nothing but wall-clock.
"""

from __future__ import annotations

import pytest

from repro.core.config import default_config
from repro.core.experiment import (
    run_decentralized_experiment,
    run_vanilla_experiment,
)


class ExperimentCache:
    """Memoizes experiment results across benchmark modules."""

    def __init__(self) -> None:
        self._vanilla = {}
        self._decentralized = {}

    def vanilla(self, model_kind: str, consider: bool):
        key = (model_kind, consider)
        if key not in self._vanilla:
            config = default_config(model_kind)
            self._vanilla[key] = run_vanilla_experiment(config, consider=consider)
        return self._vanilla[key]

    def decentralized(self, model_kind: str):
        if model_kind not in self._decentralized:
            config = default_config(model_kind)
            self._decentralized[model_kind] = run_decentralized_experiment(config)
        return self._decentralized[model_kind]


@pytest.fixture(scope="session")
def experiments() -> ExperimentCache:
    """Session-wide experiment result cache."""
    return ExperimentCache()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
