"""Shared fixtures for the benchmark harness.

Each bench regenerates one of the paper's tables or figures.  Experiments
are deterministic functions of their config, so a session-scoped cache lets
the table bench and the figure bench of the same experiment share one run
(exactly like the paper derives Table I and Figure 3 from the same logs).

Benchmarks that wrap a full federated experiment use
``benchmark.pedantic(..., rounds=1, iterations=1)`` — the experiment is the
unit of work being timed, and repeating a deterministic 10-round training
run adds nothing but wall-clock.
"""

from __future__ import annotations

import pytest

from _bench_util import run_once  # noqa: F401  (re-export for the bench modules)
from repro.core.config import default_config
from repro.core.experiment import (
    run_decentralized_experiment,
    run_vanilla_experiment,
)


def pytest_addoption(parser) -> None:
    """``--smoke``: tiny cohorts and 1-2 rounds, so a bench finishes in
    seconds (used by the tier-1 suite and quick local sanity runs)."""
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run benchmarks in fast smoke mode (tiny cohort, 1-2 rounds)",
    )


@pytest.fixture(scope="session")
def smoke(request) -> bool:
    """Whether this session runs in ``--smoke`` fast mode."""
    return bool(request.config.getoption("--smoke"))


class ExperimentCache:
    """Memoizes experiment results across benchmark modules."""

    def __init__(self) -> None:
        self._vanilla = {}
        self._decentralized = {}

    def vanilla(self, model_kind: str, consider: bool):
        key = (model_kind, consider)
        if key not in self._vanilla:
            config = default_config(model_kind)
            self._vanilla[key] = run_vanilla_experiment(config, consider=consider)
        return self._vanilla[key]

    def decentralized(self, model_kind: str):
        if model_kind not in self._decentralized:
            config = default_config(model_kind)
            self._decentralized[model_kind] = run_decentralized_experiment(config)
        return self._decentralized[model_kind]


@pytest.fixture(scope="session")
def experiments() -> ExperimentCache:
    """Session-wide experiment result cache."""
    return ExperimentCache()


# run_once lives in _bench_util (re-exported above): bench modules that
# import it at runtime must not say ``from conftest import ...`` — that
# module name is ambiguous with tests/conftest.py under mixed invocations.
