"""Table I — Vanilla FL: clients' test accuracy on two aggregation types.

Regenerates the paper's Table I: for each model (SimpleNN, Efficient-B0
analog) and each client (A, B, C), the per-round accuracy under "consider"
(aggregator picks the best combination on its default test set) and
"not consider" (plain FedAvg over all three updates).

Shape criteria (paper): the two aggregation types track each other closely
— final-round gap 0.65 pp for SimpleNN, fluctuations within ~1 pp for
Efficient-B0 — and both rise monotonically-ish over ten rounds.
"""

from __future__ import annotations

from conftest import run_once
from repro.metrics.tables import format_table1

MODEL_LABELS = {"simple_nn": "Simple NN", "efficientnet_b0_sim": "Efficient-B0"}


def _table1_block(experiments, model_kind: str) -> str:
    consider = experiments.vanilla(model_kind, consider=True)
    not_consider = experiments.vanilla(model_kind, consider=False)
    series = {
        client: {
            "consider": consider.client_accuracy[client],
            "not_consider": not_consider.client_accuracy[client],
        }
        for client in consider.config.client_ids
    }
    return format_table1(MODEL_LABELS[model_kind], series)


def test_table1_simple_nn(benchmark, experiments):
    """Table I, SimpleNN block."""
    text = run_once(benchmark, lambda: _table1_block(experiments, "simple_nn"))
    print()
    print(text)
    consider = experiments.vanilla("simple_nn", True)
    not_consider = experiments.vanilla("simple_nn", False)
    for client in ("A", "B", "C"):
        gap = abs(consider.final_accuracy(client) - not_consider.final_accuracy(client))
        # Paper: 0.0065 gap; shape criterion: comparable accuracy (< 6 pp).
        assert gap < 0.06, f"consider/not-consider diverged for {client}: {gap:.4f}"
        series = not_consider.client_accuracy[client]
        assert series[-1] > series[0], "SimpleNN accuracy should rise over rounds"


def test_table1_efficientnet(benchmark, experiments):
    """Table I, Efficient-B0 block."""
    text = run_once(benchmark, lambda: _table1_block(experiments, "efficientnet_b0_sim"))
    print()
    print(text)
    consider = experiments.vanilla("efficientnet_b0_sim", True)
    not_consider = experiments.vanilla("efficientnet_b0_sim", False)
    for client in ("A", "B", "C"):
        gap = abs(consider.final_accuracy(client) - not_consider.final_accuracy(client))
        assert gap < 0.02, f"complex-model gap too large for {client}: {gap:.4f}"
        series = not_consider.client_accuracy[client]
        # Transfer-learning signature: high start, higher plateau.
        assert series[0] > 0.6
        assert series[-1] >= series[0]


def test_table1_complex_beats_simple(experiments):
    """Cross-block sanity: Efficient-B0 ends well above SimpleNN (paper: 86% vs 60%)."""
    simple = experiments.vanilla("simple_nn", False).final_accuracy("A")
    complex_ = experiments.vanilla("efficientnet_b0_sim", False).final_accuracy("A")
    assert complex_ > simple + 0.05
