"""Design-choice ablations (DESIGN.md §5).

A1 — combination search at larger cohorts (the paper's future work on "the
impact of an arbitrary number of local updates"): exhaustive enumeration is
O(2^n) model evaluations; greedy forward selection is O(n^2).  The bench
compares both on a 6-client cohort: accuracy achieved and evaluations
spent.

A2 — operating mode: personalized combination aggregation vs the on-chain
global-vote mode (§III-B's two options).  Both should reach comparable
accuracy; global-vote trades personalization for a single canonical model
and adds the vote-finalization latency.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from repro.core.config import ExperimentConfig
from repro.core.decentralized import DecentralizedConfig
from repro.core.experiment import run_decentralized_experiment
from repro.data.dataset import Dataset
from repro.data.synthetic import SyntheticImageDataset, SyntheticSpec, client_class_probs
from repro.fl.aggregation import ModelUpdate
from repro.fl.selection import best_combination, greedy_combination
from repro.fl.trainer import LocalTrainer, TrainConfig
from repro.metrics.tables import render_table
from repro.nn.models import build_simple_nn
from repro.utils.rng import RngFactory

_CACHE: dict = {}


def _six_client_updates():
    """Six trained updates over skewed slices of the calibrated dataset."""
    if "updates" in _CACHE:
        return _CACHE["updates"], _CACHE["scratch"], _CACHE["test"]
    spec = SyntheticSpec()
    factory = SyntheticImageDataset(spec)
    rngs = RngFactory(99)
    client_ids = [f"c{i}" for i in range(6)]
    updates = []
    for index, client_id in enumerate(client_ids):
        probs = client_class_probs(index, len(client_ids), skew=2.0)
        train = factory.sample(400, rngs.get("train", client_id), class_probs=probs)
        model = build_simple_nn(np.random.default_rng(42))
        trainer = LocalTrainer(
            TrainConfig(epochs=3, learning_rate=0.008), rng=rngs.get("fit", client_id)
        )
        trainer.train(model, train)
        updates.append(
            ModelUpdate(client_id=client_id, weights=model.get_weights(), num_samples=400)
        )
    scratch = build_simple_nn(np.random.default_rng(42))
    test: Dataset = factory.sample(400, rngs.get("test"))
    _CACHE.update(updates=updates, scratch=scratch, test=test)
    return updates, scratch, test


def test_a1_greedy_vs_exhaustive(benchmark):
    """A1: greedy forward selection vs exhaustive enumeration at n=6."""

    def run():
        updates, scratch, test = _six_client_updates()
        exhaustive = best_combination(updates, scratch, test)
        greedy = greedy_combination(updates, scratch, test)
        return {
            "exhaustive_acc": exhaustive.accuracy,
            "exhaustive_evals": 2 ** len(updates) - 1,
            "greedy_acc": greedy.accuracy,
            "greedy_evals": len(updates) ** 2,  # upper bound on evaluations
            "exhaustive_members": exhaustive.label,
            "greedy_members": greedy.label,
        }

    result = run_once(benchmark, run)
    print()
    print(
        render_table(
            "A1: combination search at 6 clients",
            ["search", "accuracy", "model evals", "chosen"],
            [
                [
                    "exhaustive",
                    f"{result['exhaustive_acc']:.4f}",
                    str(result["exhaustive_evals"]),
                    result["exhaustive_members"],
                ],
                [
                    "greedy",
                    f"{result['greedy_acc']:.4f}",
                    f"<= {result['greedy_evals']}",
                    result["greedy_members"],
                ],
            ],
        )
    )
    # Greedy is near-optimal at a fraction of the evaluations.
    assert result["greedy_acc"] >= result["exhaustive_acc"] - 0.02
    assert result["greedy_evals"] < result["exhaustive_evals"]


def _mode_run(mode: str):
    key = f"mode-{mode}"
    if key not in _CACHE:
        config = ExperimentConfig(
            model_kind="simple_nn",
            rounds=3,
            local_epochs=3,
            train_samples_per_client=400,
            test_samples_per_client=300,
            aggregator_test_samples=300,
            learning_rate=0.008,
            seed=5,
        )
        _CACHE[key] = run_decentralized_experiment(
            config, chain_config=DecentralizedConfig(mode=mode)
        )
    return _CACHE[key]


def test_a2_global_vote_vs_personalized(benchmark):
    """A2: the two operating modes reach comparable accuracy."""

    def run():
        personalized = _mode_run("personalized")
        global_vote = _mode_run("global_vote")
        return {
            "personalized_acc": float(
                np.mean([log.chosen_accuracy for log in personalized.round_logs[-3:]])
            ),
            "global_acc": float(
                np.mean([log.chosen_accuracy for log in global_vote.round_logs[-3:]])
            ),
            "personalized_time": float(
                np.mean([log.aggregated_at - log.submitted_at for log in personalized.round_logs])
            ),
            "global_time": float(
                np.mean([log.aggregated_at - log.submitted_at for log in global_vote.round_logs])
            ),
        }

    result = run_once(benchmark, run)
    print()
    print(
        render_table(
            "A2: personalized vs global-vote mode",
            ["mode", "final acc", "mean submit->adopt (sim s)"],
            [
                [
                    "personalized",
                    f"{result['personalized_acc']:.4f}",
                    f"{result['personalized_time']:.1f}",
                ],
                ["global_vote", f"{result['global_acc']:.4f}", f"{result['global_time']:.1f}"],
            ],
        )
    )
    assert abs(result["personalized_acc"] - result["global_acc"]) < 0.1
    # Voting adds at least the extra mining latency of the vote txs.
    assert result["global_time"] >= result["personalized_time"]


def _skew_run(skew: float):
    key = f"skew-{skew}"
    if key not in _CACHE:
        config = ExperimentConfig(
            model_kind="simple_nn",
            rounds=3,
            local_epochs=3,
            train_samples_per_client=400,
            test_samples_per_client=300,
            aggregator_test_samples=300,
            learning_rate=0.008,
            client_skew=skew,
            seed=5,
        )
        _CACHE[key] = run_decentralized_experiment(config)
    return _CACHE[key]


def test_a3_heterogeneity_sweep(benchmark):
    """A3: data heterogeneity drives the solo-vs-combination gap.

    The paper attributes abnormal models to "the natural data heterogeneity
    across clients".  Sweeping the per-client label skew shows the
    mechanism: with IID data a solo model is nearly as good as the full
    combination; as skew grows, solo models tilt toward their local priors
    and the combination advantage widens.
    """

    def run():
        rows = []
        for skew in (0.0, 1.0, 3.0):
            result = _skew_run(skew)
            gaps = []
            for peer_id in ("A", "B", "C"):
                table = result.combination_accuracy[peer_id]
                gaps.append(np.mean(np.array(table["A,B,C"]) - np.array(table[peer_id])))
            rows.append({"skew": skew, "mean_gap": float(np.mean(gaps))})
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        render_table(
            "A3: heterogeneity vs combination advantage (SimpleNN)",
            ["client skew", "mean(full - solo) accuracy gap"],
            [[f"{row['skew']:.1f}", f"{row['mean_gap']:+.4f}"] for row in rows],
        )
    )
    # The combination advantage grows with heterogeneity.
    assert rows[-1]["mean_gap"] > rows[0]["mean_gap"]
