"""X1 — the headline trade-off: aggregation wait time vs accuracy per policy.

The paper's central question — "should we prioritize waiting for all models
for aggregation, or accept a slight reduction in accuracy to expedite the
process asynchronously?" — quantified: a wait-for-k sweep (k = 1, 2, 3)
over the decentralized deployment, reporting mean per-round wait time
(simulated seconds between a peer's own submission and policy readiness)
against final accuracy.

Shape criteria: wait time increases with k; for the simple model accuracy
is nearly flat across k (async is free); for the complex model k=3 buys the
best accuracy with the early-round advantage of full aggregation.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import run_once
from repro.core.config import default_config
from repro.core.decentralized import DecentralizedConfig
from repro.core.experiment import run_decentralized_experiment
from repro.core.peer import PeerConfig  # noqa: F401  (documented entry point)
from repro.fl.async_policy import WaitForAll, WaitForK
from repro.metrics.tables import render_table

_SWEEP_CACHE: dict = {}

#: Heterogeneous device speeds (simulated seconds of local training): a
#: fast edge box, a mid-range laptop, a slow embedded device.  This is the
#: situation the paper's asynchronous aggregation exists for — with equal
#: devices wait-for-k never fires early.
TRAINING_TIMES = {"A": 20.0, "B": 60.0, "C": 150.0}


def _staggered_chain_config(policy) -> DecentralizedConfig:
    return DecentralizedConfig(policy=policy)


def _sweep(model_kind: str) -> list[dict]:
    if model_kind in _SWEEP_CACHE:
        return _SWEEP_CACHE[model_kind]
    rows = []
    for policy in (WaitForK(1), WaitForK(2), WaitForAll()):
        config = default_config(model_kind)
        result = run_decentralized_experiment(
            config,
            chain_config=_staggered_chain_config(policy),
            training_times=TRAINING_TIMES,
        )
        mean_wait = float(np.mean(list(result.wait_times.values())))
        final_acc = float(
            np.mean([result.round_logs[-i].chosen_accuracy for i in range(1, 4)])
        )
        mean_models = float(np.mean([log.updates_visible for log in result.round_logs]))
        rows.append(
            {
                "policy": policy.describe(),
                "mean_wait_s": mean_wait,
                "final_accuracy": final_acc,
                "mean_models_visible": mean_models,
            }
        )
    _SWEEP_CACHE[model_kind] = rows
    return rows


def _print_sweep(model_kind: str, rows: list[dict]) -> None:
    print()
    print(
        render_table(
            f"X1: wait-or-not sweep ({model_kind})",
            ["policy", "mean wait (sim s)", "final acc", "models visible"],
            [
                [
                    row["policy"],
                    f"{row['mean_wait_s']:.1f}",
                    f"{row['final_accuracy']:.4f}",
                    f"{row['mean_models_visible']:.2f}",
                ]
                for row in rows
            ],
        )
    )


@pytest.mark.parametrize("model_kind", ["simple_nn", "efficientnet_b0_sim"])
def test_async_tradeoff(benchmark, model_kind):
    """Wait-for-k sweep for one model family."""
    rows = run_once(benchmark, lambda: _sweep(model_kind))
    _print_sweep(model_kind, rows)

    waits = [row["mean_wait_s"] for row in rows]
    accs = [row["final_accuracy"] for row in rows]
    models = [row["mean_models_visible"] for row in rows]

    # Speed: waiting for fewer peers is never slower, and k=1 is strictly
    # faster than wait-for-all.
    assert waits[0] <= waits[1] <= waits[2]
    assert waits[0] < waits[2]
    # Larger k aggregates more models on average.
    assert models[0] <= models[2]
    # Precision: accuracy loss from async is small (paper: < 0.5 pp for
    # pairs on the complex model; we allow 3 pp over the whole sweep).
    assert max(accs) - min(accs) < 0.03


def test_async_tradeoff_direction_for_complex(benchmark):
    """For the complex model, wait-for-all is at least as accurate as k=1."""
    rows = run_once(benchmark, lambda: _sweep("efficientnet_b0_sim"))
    by_policy = {row["policy"]: row for row in rows}
    assert (
        by_policy["wait-for-all"]["final_accuracy"]
        >= by_policy["wait-for-1"]["final_accuracy"] - 0.01
    )
