"""Figure 4 — Blockchain-based FL: accuracy curves per model combination.

Regenerates the six panels of the paper's Figure 4 (three clients x two
models), one curve per combination, rendered as terminal sparklines.

Shape criteria (paper): for SimpleNN the curves bundle tightly ("the
similarity of various aggregations is evident"); for Efficient-B0 the
curves separate, with the full combination on top early and solo lowest.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from repro.metrics.figures import combination_figure_series, render_ascii_chart

MODEL_LABELS = {"simple_nn": "SimpleNN", "efficientnet_b0_sim": "Efficient-B0"}


def _figure4(experiments, model_kind: str) -> str:
    result = experiments.decentralized(model_kind)
    figures = combination_figure_series(result.combination_accuracy)
    blocks = [
        render_ascii_chart(curves, title=f"Fig 4 ({MODEL_LABELS[model_kind]}) {panel}")
        for panel, curves in figures.items()
    ]
    return "\n\n".join(blocks)


def test_fig4_simple_nn(benchmark, experiments):
    """Figure 4 SimpleNN panels: curves bundle tightly."""
    text = run_once(benchmark, lambda: _figure4(experiments, "simple_nn"))
    print()
    print(text)
    result = experiments.decentralized("simple_nn")
    for peer_id in ("A", "B", "C"):
        table = result.combination_accuracy[peer_id]
        # From round 3 on, the spread across combinations stays small.
        late = np.array([series[2:] for series in table.values()])
        spread = late.max(axis=0) - late.min(axis=0)
        assert spread.mean() < 0.08, f"{peer_id}: SimpleNN combos diverged"


def test_fig4_efficientnet(benchmark, experiments):
    """Figure 4 Efficient-B0 panels: combinations separate, full set on top."""
    text = run_once(benchmark, lambda: _figure4(experiments, "efficientnet_b0_sim"))
    print()
    print(text)
    result = experiments.decentralized("efficientnet_b0_sim")
    for peer_id in ("A", "B", "C"):
        table = result.combination_accuracy[peer_id]
        # Round-1 separation: full set well above solo (paper: 0.79 vs 0.77,
        # ours wider because the trunk mismatch amplifies early variance).
        assert table["A,B,C"][0] > table[peer_id][0]
        # Early spread exceeds the late SimpleNN spread: combos matter here.
        round1_spread = max(s[0] for s in table.values()) - min(s[0] for s in table.values())
        assert round1_spread > 0.03


def test_fig4_collaboration_beats_isolation(experiments):
    """Paper: 'it is more beneficial for participating clients to
    collaborate by combining their local models with others'."""
    result = experiments.decentralized("efficientnet_b0_sim")
    for peer_id in ("A", "B", "C"):
        table = result.combination_accuracy[peer_id]
        solo_auc = float(np.mean(table[peer_id]))
        collab_auc = float(
            np.mean([np.mean(series) for combo, series in table.items() if combo != peer_id])
        )
        assert collab_auc > solo_auc - 0.01
