"""X2 — blockchain performance vs cohort size (the §II-A2 accepted finding).

The paper adopts prior findings that chain performance degrades as
participants grow (Peng et al.: doubling participants halves throughput;
Nguyen et al.: block size and throughput trade off through propagation).
The physical mechanism our simulator reproduces is **fork churn**: denser
gossip means longer effective propagation, so simultaneous block discovery
— and therefore stale blocks and reorgs — becomes more frequent as the
cohort grows, wasting mined capacity.

Setup: capped blocks (4 txs), 1-second target interval, per-link latency
scaling with cohort density, a 40-transaction backlog, averaged over five
seeds.  Reported: effective throughput (backlog / drain time) and reorg
count per cohort size, plus the block-interval ablation from DESIGN.md §5.1.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_util import run_once
from repro.chain.crypto import KeyPair
from repro.chain.network import LatencyModel, P2PNetwork
from repro.chain.node import GenesisSpec, Node, NodeConfig
from repro.chain.pow import ProofOfWork, RetargetRule
from repro.chain.runtime import ContractRuntime
from repro.chain.transaction import Transaction
from repro.contracts import register_all
from repro.metrics.tables import render_table
from repro.utils.events import Simulator

HASHRATE = 1000.0
SEEDS = range(5)


def smoke_scale(smoke: bool) -> tuple[range, int]:
    """(seeds, backlog size) for a run; ``--smoke`` shrinks both."""
    return (range(2), 12) if smoke else (SEEDS, 40)


def _build(n_nodes: int, target_interval: float, seed: int):
    runtime = ContractRuntime()
    register_all(runtime)
    keypairs = [KeyPair.from_seed(f"tp-{seed}-{i}") for i in range(n_nodes)]
    genesis = GenesisSpec(
        allocations={kp.address: 10**16 for kp in keypairs},
        # Network-wide retarget equilibrium: n miners at HASHRATE each.
        difficulty=max(int(n_nodes * HASHRATE * target_interval), 1),
    )
    sim = Simulator()
    network = P2PNetwork(
        sim,
        ProofOfWork(
            np.random.default_rng(seed),
            retarget=RetargetRule(target_interval=target_interval),
        ),
        # Effective propagation grows with cohort density (shared medium).
        latency=LatencyModel(base=0.05 * n_nodes / 3, jitter=0.02),
        rng=np.random.default_rng(seed + 1),
    )
    nodes = []
    for kp in keypairs:
        node = Node(kp, genesis, runtime, NodeConfig(max_txs_per_block=4))
        network.add_node(node, hashrate=HASHRATE)
        nodes.append(node)
    return network, nodes, keypairs


def _drain_backlog(n_nodes: int, n_txs: int = 40, target_interval: float = 1.0, seed: int = 0) -> dict:
    """Broadcast ``n_txs`` transfers; measure time until all are mined."""
    network, nodes, keypairs = _build(n_nodes, target_interval, seed)
    txs = []
    per_sender = n_txs // n_nodes + 1
    for sender_index, kp in enumerate(keypairs):
        for nonce in range(per_sender):
            if len(txs) == n_txs:
                break
            tx = Transaction(
                sender=kp.address,
                to=keypairs[(sender_index + 1) % n_nodes].address,
                nonce=nonce,
                value=1,
                data=b"\x01" * 128,
            ).sign_with(kp)
            txs.append(tx)
            network.broadcast_transaction(nodes[sender_index].address, tx)
    network.start_mining()
    observer = nodes[0]
    while not all(observer.receipt_of(tx.tx_hash) for tx in txs):
        if not network.sim.step():
            raise RuntimeError("drained before all txs mined")
    elapsed = network.sim.now
    network.stop_mining()
    return {
        "nodes": n_nodes,
        "elapsed": elapsed,
        "throughput": n_txs / elapsed,
        "blocks": network.stats.blocks_mined,
        "reorgs": network.stats.reorgs,
    }


def _averaged(n_nodes: int, target_interval: float = 1.0, seeds=SEEDS, n_txs: int = 40) -> dict:
    runs = [
        _drain_backlog(n_nodes, n_txs=n_txs, target_interval=target_interval, seed=s)
        for s in seeds
    ]
    return {
        "nodes": n_nodes,
        "throughput": float(np.mean([r["throughput"] for r in runs])),
        "reorgs": float(np.mean([r["reorgs"] for r in runs])),
        "blocks": float(np.mean([r["blocks"] for r in runs])),
    }


_SWEEP_CACHE: dict[bool, list[dict]] = {}


def _sweep(smoke: bool = False) -> list[dict]:
    """Cohort sweep; ``--smoke`` shrinks cohorts/seeds/backlog to seconds."""
    if smoke not in _SWEEP_CACHE:
        cohorts = (3, 6) if smoke else (3, 6, 12)
        seeds, n_txs = smoke_scale(smoke)
        _SWEEP_CACHE[smoke] = [
            _averaged(n_nodes, seeds=seeds, n_txs=n_txs) for n_nodes in cohorts
        ]
    return _SWEEP_CACHE[smoke]


def test_throughput_vs_cohort_size(benchmark, smoke):
    """Throughput degrades and fork churn grows as the cohort grows (X2)."""
    rows = run_once(benchmark, lambda: _sweep(smoke))
    print()
    print(
        render_table(
            "X2: chain performance vs participants (mean of 5 seeds)",
            ["nodes", "tx/s", "mean reorgs", "mean blocks"],
            [
                [
                    str(row["nodes"]),
                    f"{row['throughput']:.3f}",
                    f"{row['reorgs']:.1f}",
                    f"{row['blocks']:.1f}",
                ]
                for row in rows
            ],
        )
    )
    # Large cohorts are slower than small ones (the paper's accepted finding).
    assert rows[0]["throughput"] > rows[-1]["throughput"]
    if not smoke:
        # Fork churn rises monotonically with cohort size (needs the full
        # seed count to average out; smoke mode checks the headline only).
        reorgs = [row["reorgs"] for row in rows]
        assert reorgs[0] <= reorgs[1] <= reorgs[2]
        assert reorgs[2] > reorgs[0]


@pytest.mark.parametrize("target_interval", [0.5, 2.0])
def test_reorgs_vs_block_interval(benchmark, smoke, target_interval):
    """Ablation (DESIGN.md §5.1): faster blocks mean more fork churn."""
    seeds, n_txs = smoke_scale(smoke)
    result = run_once(
        benchmark,
        lambda: _averaged(6, target_interval=target_interval, seeds=seeds, n_txs=n_txs),
    )
    print()
    print(
        f"target_interval={target_interval}s: mean blocks={result['blocks']:.1f}, "
        f"mean reorgs={result['reorgs']:.1f}, throughput={result['throughput']:.3f} tx/s"
    )
    assert result["blocks"] > 0


def test_fast_blocks_cause_more_reorgs(smoke):
    """Direct comparison of the fork-churn ablation, per mined block."""
    seeds, n_txs = smoke_scale(smoke)
    fast = _averaged(6, target_interval=0.5, seeds=seeds, n_txs=n_txs)
    slow = _averaged(6, target_interval=2.0, seeds=seeds, n_txs=n_txs)
    fast_rate = fast["reorgs"] / max(fast["blocks"], 1)
    slow_rate = slow["reorgs"] / max(slow["blocks"], 1)
    assert fast_rate >= slow_rate
