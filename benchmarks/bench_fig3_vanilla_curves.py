"""Figure 3 — Vanilla FL: test accuracy curves, consider vs not-consider.

Regenerates the six panels of the paper's Figure 3 (three clients x two
models) as accuracy series, rendered as terminal sparklines.  The series
are the same data as Table I; the figure bench verifies the curve shapes:
SimpleNN rises throughout, Efficient-B0 jumps then plateaus, and the two
aggregation types visually overlap.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from repro.metrics.figures import render_ascii_chart, vanilla_figure_series

MODEL_LABELS = {"simple_nn": "SimpleNN", "efficientnet_b0_sim": "Efficient B0"}


def _figure3(experiments, model_kind: str) -> str:
    consider = experiments.vanilla(model_kind, consider=True)
    not_consider = experiments.vanilla(model_kind, consider=False)
    series = {
        client: {
            "consider": consider.client_accuracy[client],
            "not consider": not_consider.client_accuracy[client],
        }
        for client in consider.config.client_ids
    }
    figures = vanilla_figure_series(series)
    blocks = [
        render_ascii_chart(curve_list, title=f"Fig 3 ({MODEL_LABELS[model_kind]}) {panel}")
        for panel, curve_list in figures.items()
    ]
    return "\n\n".join(blocks)


def test_fig3_simple_nn(benchmark, experiments):
    """Figure 3a — SimpleNN panels."""
    text = run_once(benchmark, lambda: _figure3(experiments, "simple_nn"))
    print()
    print(text)
    result = experiments.vanilla("simple_nn", consider=False)
    for client, series in result.client_accuracy.items():
        # Rising curve: final clearly above round 1, max near the end.
        assert series[-1] > series[0] + 0.05, f"{client} curve is flat"
        assert int(np.argmax(series)) >= len(series) // 2


def test_fig3_efficientnet(benchmark, experiments):
    """Figure 3b — Efficient-B0 panels."""
    text = run_once(benchmark, lambda: _figure3(experiments, "efficientnet_b0_sim"))
    print()
    print(text)
    result = experiments.vanilla("efficientnet_b0_sim", consider=False)
    for client, series in result.client_accuracy.items():
        # Plateau curve: round 2 already within 2pp of the final value.
        assert abs(series[1] - series[-1]) < 0.02, f"{client} did not plateau"


def test_fig3_curves_overlap(experiments):
    """The consider / not-consider curves overlap (the paper's similarity)."""
    for model_kind in ("simple_nn", "efficientnet_b0_sim"):
        consider = experiments.vanilla(model_kind, consider=True)
        not_consider = experiments.vanilla(model_kind, consider=False)
        for client in ("A", "B", "C"):
            a = np.array(consider.client_accuracy[client])
            b = np.array(not_consider.client_accuracy[client])
            assert np.mean(np.abs(a - b)) < 0.08
