"""Helpers shared by benchmark modules.

Lives under a unique module name so bench files can import it at runtime
regardless of pytest argument order — a bare ``import conftest`` resolves
to whichever conftest.py pytest put on ``sys.path`` first (tests/ or
benchmarks/), which made mixed tests+benchmarks invocations order-dependent.
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
