"""X8 — chain scale-out: parallel execution, cold storage, snap sync.

PR 10 adds the ledger-side scale axis: deterministic parallel transaction
execution, a spillable cold block/receipt store, and root-verified
snapshot state-sync.  This bench prices all three and proves the
contracts that make them safe to ship:

* **Parallel is byte-identical to serial.**  A thousand-registration
  block imports through the speculate/merge scheduler and must produce
  the same head hash, state root, and per-transaction receipts as the
  serial import (the import-time state-root check enforces this
  independently; the bench re-asserts it on the receipts).  Wall-clock
  speedup is reported at every scale and floored only on hosts with at
  least four cores — a single-core CI box prices the overhead instead.
* **Memory is bounded by the hot window, not the chain.**  The paper's
  cross-device profile (1000 registered / 25 sampled) runs with cold
  storage on: blocks and receipts beyond the hot window live in the
  segment file, and peak RSS stays well under a gigabyte at full scale.
* **A rejoining peer replays the interval, not the chain.**
  ``sync_from`` fast-forwards a fresh node to the provider's head after
  executing only the post-checkpoint tail — asserted to be a small
  fraction of the chain length.

Smoke (``--smoke``, tier-1) trims to a 30-tx block, a 30/5 cohort, and a
20-block chain; identity and replay-bound asserts run at every tier,
wall-clock floors never do.
"""

from __future__ import annotations

import os
import resource
import time

from _bench_util import run_once
from repro.chain.crypto import KeyPair
from repro.chain.node import GenesisSpec, Node, NodeConfig
from repro.chain.runtime import ContractRuntime
from repro.chain.scale import ColdStore, snapshot_key
from repro.chain.transaction import Transaction
from repro.contracts import register_all
from repro.metrics.tables import render_table
from repro.scenarios import cohort_scenario, run_scenario
from repro.scenarios.spec import replace_axis

#: Minimum speedup demanded of the parallel import on capable hosts.
SPEEDUP_FLOOR = 1.05

#: Cores below which the speedup floor is reported but not asserted.
SPEEDUP_MIN_CORES = 4

_CACHE: dict = {}


def scaleout_params(smoke: bool = False) -> dict:
    """Workload profile for one tier."""
    if smoke:
        return {
            "block_txs": 30,
            "workers": 2,
            "registered": 30,
            "sampled": 5,
            "rounds": 2,
            "hot_window": 4,
            "chain_length": 20,
            "snapshot_interval": 8,
        }
    return {
        "block_txs": 1000,
        "workers": min(4, os.cpu_count() or 1),
        "registered": 1000,
        "sampled": 25,
        "rounds": 3,
        "hot_window": 8,
        "chain_length": 60,
        "snapshot_interval": 16,
    }


# ---------------------------------------------------------------------------
# Pillar 1: parallel import of a thousand-registration block
# ---------------------------------------------------------------------------


def _registration_chain(n_txs: int, seed: int = 7):
    """A two-block chain: registry deploy, then ``n_txs`` registrations."""
    kps = [KeyPair.from_seed(f"scaleout-{seed}-{i}") for i in range(n_txs + 1)]
    genesis = GenesisSpec(allocations={kp.address: 10**15 for kp in kps})
    runtime = ContractRuntime()
    register_all(runtime)
    builder = Node(kps[0], genesis, runtime, NodeConfig())
    deploy = Transaction(
        sender=kps[0].address,
        to=None,
        nonce=0,
        args={"contract": "participant_registry"},
    ).sign_with(kps[0])
    builder.submit_transaction(deploy)
    deploy_block = builder.build_block_candidate(13.0, difficulty=1)
    builder.seal_and_import(deploy_block, nonce=0)
    registry = builder.receipt_of(deploy.tx_hash).contract_address
    for i, kp in enumerate(kps[1:]):
        tx = Transaction(
            sender=kp.address,
            to=registry,
            nonce=0,
            method="register",
            args={"display_name": f"peer-{i}"},
        ).sign_with(kp)
        builder.submit_transaction(tx)
    big_block = builder.build_block_candidate(26.0, difficulty=1)
    builder.seal_and_import(big_block, nonce=0)
    assert len(big_block.transactions) == n_txs
    return genesis, runtime, deploy_block, big_block


def _timed_import(genesis, runtime, deploy_block, big_block, **cfg):
    """Import the registration block on a fresh node; returns (s, node)."""
    node = Node(KeyPair.from_seed("scaleout-observer"), genesis, runtime, NodeConfig(**cfg))
    node.import_block(deploy_block)
    start = time.perf_counter()
    node.import_block(big_block)
    return time.perf_counter() - start, node


def run_parallel_identity(n_txs: int, workers: int, seed: int = 7) -> dict:
    """Serial vs parallel import of one ``n_txs``-registration block.

    Asserts byte identity (head hash, state root, every receipt) and
    that all registrations merged on the clean fast path — the registry
    keeps no shared counter slot, so distinct senders never conflict.
    """
    key = ("identity", n_txs, workers, seed)
    if key in _CACHE:
        return _CACHE[key]
    chain = _registration_chain(n_txs, seed=seed)
    serial_s, serial = _timed_import(*chain)
    parallel_s, parallel = _timed_import(
        *chain,
        execution="parallel",
        execution_workers=workers,
        parallel_min_txs=2,
    )
    big_block = chain[3]
    assert parallel.head.block_hash == serial.head.block_hash
    assert parallel.state.state_root() == serial.state.state_root()
    for tx in big_block.transactions:
        assert (
            parallel.receipt_of(tx.tx_hash).to_dict()
            == serial.receipt_of(tx.tx_hash).to_dict()
        ), f"receipt diverged for {tx.tx_hash[:10]}"
    stats = parallel.execution_stats
    assert stats.parallel_blocks == 1
    assert stats.clean_txs == n_txs, (
        f"only {stats.clean_txs}/{n_txs} registrations merged clean"
    )
    profile = {
        "n_txs": n_txs,
        "workers": workers,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "clean_txs": stats.clean_txs,
        "dirty_txs": stats.dirty_txs,
        "cores": os.cpu_count() or 1,
    }
    _CACHE[key] = profile
    return profile


# ---------------------------------------------------------------------------
# Pillar 2: the cross-device profile on cold storage
# ---------------------------------------------------------------------------


def run_cold_profile(
    registered: int,
    sampled: int,
    rounds: int,
    hot_window: int,
    seed: int = 42,
) -> dict:
    """The 1000-registered / 25-sampled cohort with spilling enabled.

    Asserts that the cold store actually absorbed history (whenever the
    chain outgrew the hot window) and reports rounds/sec plus peak RSS —
    the number the hot-window bound exists to keep flat.
    """
    key = ("cold", registered, sampled, rounds, hot_window, seed)
    if key in _CACHE:
        return _CACHE[key]
    base = cohort_scenario(registered, seed=seed, sampled_k=sampled)
    spec = replace_axis(base, "rounds", rounds)
    spec = replace_axis(spec, "chain.cold_storage", True)
    spec = replace_axis(spec, "chain.hot_window", hot_window)
    spec = replace_axis(spec, "chain.execution", "parallel")
    spec = replace_axis(spec, "chain.parallel_min_txs", 32)

    start = time.perf_counter()
    result = run_scenario(spec)
    wall = time.perf_counter() - start

    storage = result.chain_stats["storage"]
    height = max(result.chain_stats["heights"].values())
    if height > hot_window + 1:
        assert storage["spilled_blocks"] > 0, (
            f"chain reached height {height} with hot_window={hot_window} "
            "but nothing spilled"
        )
        assert storage["cold"]["puts"] > 0
        assert storage["cold_entries"] > 0
    assert storage["hot_blocks"] <= len(result.chain_stats["heights"]) * (
        hot_window + 1
    )
    profile = {
        "registered": registered,
        "sampled": sampled,
        "rounds": rounds,
        "height": height,
        "wall_s": wall,
        "rounds_per_s": rounds / wall,
        "spilled_blocks": storage["spilled_blocks"],
        "cold_entries": storage.get("cold_entries", 0),
        "cold_mb": storage.get("cold_bytes", 0) / 2**20,
        "parallel_blocks": result.chain_stats["execution"]["parallel_blocks"],
        "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024,
    }
    _CACHE[key] = profile
    return profile


# ---------------------------------------------------------------------------
# Pillar 3: snapshot rejoin
# ---------------------------------------------------------------------------


def run_rejoin_profile(chain_length: int, interval: int, seed: int = 7) -> dict:
    """A fresh peer joins a ``chain_length`` chain via snapshot sync.

    Asserts the joiner lands on the provider's exact head and state root
    after executing only the post-checkpoint tail — a small fraction of
    the chain, bounded by the snapshot interval.
    """
    key = ("rejoin", chain_length, interval, seed)
    if key in _CACHE:
        return _CACHE[key]
    kps = [KeyPair.from_seed(f"rejoin-{seed}-{i}") for i in range(2)]
    genesis = GenesisSpec(allocations={kp.address: 10**15 for kp in kps})
    runtime = ContractRuntime()
    register_all(runtime)
    cold = ColdStore()
    provider = Node(
        kps[0],
        genesis,
        runtime,
        NodeConfig(cold_store=cold, hot_window=4, snapshot_interval=interval),
    )
    for _ in range(chain_length):
        block = provider.build_block_candidate(
            provider.head.header.timestamp + 13.0, difficulty=1
        )
        provider.seal_and_import(block, nonce=0)
    lineage = [
        provider.store.get(provider.store.canonical_hash(number))
        for number in range(1, chain_length + 1)
    ]
    pivot = (chain_length // interval) * interval
    payload = cold.get(snapshot_key(lineage[pivot - 1].block_hash))

    joiner = Node(kps[1], genesis, runtime, NodeConfig())
    start = time.perf_counter()
    executed = joiner.sync_from(payload, lineage[:pivot], lineage[pivot:])
    wall = time.perf_counter() - start

    assert joiner.head.block_hash == provider.head.block_hash
    assert joiner.state.state_root() == provider.state.state_root()
    assert executed == chain_length - pivot
    assert executed * 4 <= chain_length, (
        f"rejoin replayed {executed} of {chain_length} blocks — the "
        "checkpoint did not bound the catch-up"
    )
    profile = {
        "chain_length": chain_length,
        "interval": interval,
        "skipped": pivot,
        "replayed": executed,
        "sync_s": wall,
    }
    _CACHE[key] = profile
    return profile


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------


def _print_identity(profile: dict) -> None:
    print()
    print(
        render_table(
            (
                f"X8: parallel import ({profile['n_txs']} txs, "
                f"{profile['workers']} workers, {profile['cores']} cores)"
            ),
            ["metric", "value"],
            [
                ["serial s", f"{profile['serial_s']:.3f}"],
                ["parallel s", f"{profile['parallel_s']:.3f}"],
                ["speedup", f"{profile['speedup']:.2f}x"],
                ["clean txs", f"{profile['clean_txs']}"],
                ["dirty txs", f"{profile['dirty_txs']}"],
            ],
        )
    )


def test_parallel_import_byte_identical(benchmark, smoke):
    """Thousand-tx registration block: parallel == serial, priced.

    Identity (head hash, state root, receipts) is asserted inside
    :func:`run_parallel_identity` at every scale; the wall-clock floor
    applies only at full scale on hosts with enough cores to win.
    """
    params = scaleout_params(smoke)
    profile = run_once(
        benchmark,
        lambda: run_parallel_identity(params["block_txs"], params["workers"]),
    )
    _print_identity(profile)
    if not smoke and profile["cores"] >= SPEEDUP_MIN_CORES:
        assert profile["speedup"] > SPEEDUP_FLOOR, (
            f"parallel import {profile['speedup']:.2f}x on "
            f"{profile['cores']} cores, floor {SPEEDUP_FLOOR}x"
        )


def test_cold_storage_bounds_memory(benchmark, smoke):
    """1000 registered / 25 sampled on cold storage: RSS stays bounded."""
    params = scaleout_params(smoke)
    profile = run_once(
        benchmark,
        lambda: run_cold_profile(
            params["registered"],
            params["sampled"],
            params["rounds"],
            params["hot_window"],
        ),
    )
    print()
    print(
        render_table(
            (
                f"X8: cold-storage cohort ({profile['registered']} registered, "
                f"{profile['sampled']} sampled, {profile['rounds']} rounds)"
            ),
            ["metric", "value"],
            [
                ["wall s", f"{profile['wall_s']:.1f}"],
                ["rounds/s", f"{profile['rounds_per_s']:.3f}"],
                ["chain height", f"{profile['height']}"],
                ["spilled blocks", f"{profile['spilled_blocks']}"],
                ["cold entries", f"{profile['cold_entries']}"],
                ["cold MB", f"{profile['cold_mb']:.1f}"],
                ["parallel blocks", f"{profile['parallel_blocks']}"],
                ["peak RSS MB", f"{profile['peak_rss_mb']:.0f}"],
            ],
        )
    )
    assert profile["rounds_per_s"] > 0
    if not smoke:
        assert profile["peak_rss_mb"] < 1024, (
            f"peak RSS {profile['peak_rss_mb']:.0f} MB — the hot window "
            "is not bounding memory"
        )


def test_snapshot_rejoin_replays_the_tail(benchmark, smoke):
    """A rejoining peer executes the post-checkpoint tail, not the chain."""
    params = scaleout_params(smoke)
    profile = run_once(
        benchmark,
        lambda: run_rejoin_profile(
            params["chain_length"], params["snapshot_interval"]
        ),
    )
    print()
    print(
        render_table(
            f"X8: snapshot rejoin ({profile['chain_length']} blocks)",
            ["metric", "value"],
            [
                ["chain length", f"{profile['chain_length']}"],
                ["skipped (snapshot)", f"{profile['skipped']}"],
                ["replayed (tail)", f"{profile['replayed']}"],
                ["sync s", f"{profile['sync_s']:.3f}"],
            ],
        )
    )
    assert profile["replayed"] * 4 <= profile["chain_length"]
