"""X7 — client sampling: thousand-peer cohorts at sampled-k cost.

The cross-device regime registers far more clients than any round can
train: a round samples k participants from the n registered, trains and
aggregates over that subcohort, and leaves everyone else untouched.
This bench prices that axis end-to-end — a 1000-peer roster training a
25-peer subcohort per round — and proves the two contracts that make it
safe to ship:

* **Work is bounded by the subcohort, not the roster.**  Per-round
  training logs, instantiated peers, and submitted transactions must all
  scale with ``sampled * rounds`` (plus the one-off registration sweep),
  never with the 1000-peer roster.  Peak RSS is reported alongside
  rounds/sec so regressions in lazy instantiation show up as numbers.
* **Full participation is untouched.**  ``sampled_k = n`` draws nothing
  from the participation streams and must reproduce the unsampled run
  byte for byte (model digests, per-round accuracy tables, chain
  heights, wait times) — asserted in-bench through one shared
  :class:`ScenarioContext`, which also exercises the dataset-memo
  separation between participation variants.

Smoke (``--smoke``, tier-1) trims the roster to 30 registered / 5
sampled and checks every bound; wall-clock is reported but never
asserted — a loaded CI box must not flake tier-1 on a timing.
"""

from __future__ import annotations

import resource
import time
from dataclasses import replace

from _bench_util import run_once
from repro.metrics.tables import render_table
from repro.scenarios import ScenarioContext, cohort_scenario, run_scenario
from repro.scenarios.spec import replace_axis

#: One-off setup transactions the driver pays per run (contract
#: deployments + genesis plumbing) on top of the registration sweep.
SETUP_TX_ALLOWANCE = 4

#: Per-round transaction allowance beyond one submission per sampled
#: peer: the round-open call and the finalization vote margin.
ROUND_TX_OVERHEAD = 2

_CACHE: dict = {}


def sampling_params(smoke: bool = False) -> dict:
    """Roster/subcohort profile for one tier."""
    if smoke:
        return {
            "registered": 30,
            "sampled": 5,
            "rounds": 2,
            "train": 80,
            "test": 60,
            "identity_size": 6,
        }
    return {
        "registered": 1000,
        "sampled": 25,
        "rounds": 3,
        "train": 120,
        "test": 90,
        "identity_size": 10,
    }


def _profile_spec(size: int, rounds: int, train: int, test: int, seed: int, sampled=None):
    base = cohort_scenario(size, seed=seed, sampled_k=sampled)
    return replace(
        base,
        rounds=rounds,
        local_epochs=1,
        cohort=replace(base.cohort, train_samples=train, test_samples=test),
        aggregator_test_samples=test,
    )


def _identity_payload(result) -> dict:
    """Everything participation may not change, in one comparable value."""
    return {
        "digests": result.model_digests,
        "logs": [
            (
                log.peer_id,
                log.round_id,
                tuple(log.combination_accuracy.items()),
                log.chosen_combination,
                log.chosen_accuracy,
                log.submitted_at,
                log.aggregated_at,
            )
            for log in result.round_logs
        ],
        "heights": result.chain_stats["heights"],
        "offchain_blobs": result.chain_stats["offchain_blobs"],
        "wait_times": result.wait_times,
    }


def run_sampling_profile(
    registered: int,
    sampled: int,
    rounds: int,
    train: int,
    test: int,
    seed: int = 42,
) -> dict:
    """Run one registered/sampled profile and check the work bounds.

    Raises ``AssertionError`` if any round trained other than its sampled
    subcohort, if instantiation escaped the ever-active bound, or if the
    transaction count scaled with the roster beyond the one-off
    registration sweep.
    """
    key = (registered, sampled, rounds, train, test, seed)
    if key in _CACHE:
        return _CACHE[key]
    spec = _profile_spec(registered, rounds, train, test, seed, sampled=sampled)
    context = ScenarioContext()

    start = time.perf_counter()
    result = run_scenario(spec, context=context)
    wall = time.perf_counter() - start

    per_round: dict[int, int] = {}
    for log in result.round_logs:
        per_round[log.round_id] = per_round.get(log.round_id, 0) + 1
    assert sorted(per_round) == list(range(1, rounds + 1)), (
        f"expected rounds 1..{rounds}, got {sorted(per_round)}"
    )
    for round_id, count in per_round.items():
        assert count == sampled, (
            f"round {round_id} trained {count} peers, expected the "
            f"sampled {sampled}"
        )

    stats = result.chain_stats["participation"]
    assert stats["registered"] == registered
    assert stats["instantiated"] <= 1 + sampled * rounds, (
        f"instantiated {stats['instantiated']} peers, expected at most "
        f"head + {sampled}x{rounds} ever-active"
    )
    if registered > 1 + sampled * rounds:
        assert stats["instantiated"] < registered, (
            "lazy instantiation escaped: the full roster was materialized"
        )

    submits = result.chain_stats["gateway"]["requested"]["submits"]
    tx_budget = registered + SETUP_TX_ALLOWANCE + rounds * (sampled + ROUND_TX_OVERHEAD)
    assert submits <= tx_budget, (
        f"submitted {submits} transactions, budget {tx_budget} "
        f"(registration sweep + per-subcohort round work)"
    )

    profile = {
        "registered": registered,
        "sampled": sampled,
        "rounds": rounds,
        "wall_s": wall,
        "rounds_per_s": rounds / wall,
        "instantiated": stats["instantiated"],
        "submits": submits,
        "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024,
    }
    _CACHE[key] = profile
    return profile


def check_full_equivalence(size: int, rounds: int, train: int, test: int, seed: int = 42) -> dict:
    """``sampled_k = n`` must reproduce the unsampled run byte for byte.

    Both runs share one :class:`ScenarioContext`; the participation axis
    in the dataset-memo keys keeps the variants' splits separate, so a
    passing comparison also covers the memo regression.
    """
    key = ("identity", size, rounds, train, test, seed)
    if key in _CACHE:
        return _CACHE[key]
    context = ScenarioContext()
    full_spec = _profile_spec(size, rounds, train, test, seed)
    full = run_scenario(full_spec, context=context)
    sampled_spec = replace_axis(full_spec, "participation.sampled_k", size)
    sampled = run_scenario(sampled_spec, context=context)
    assert _identity_payload(sampled) == _identity_payload(full), (
        f"sampled_k={size} diverged from full participation at the "
        f"{size}-peer profile"
    )
    stats = sampled.chain_stats["participation"]
    assert stats["instantiated"] == size, "k = n must instantiate everyone"
    result = {"size": size, "rounds": rounds, "identical": True}
    _CACHE[key] = result
    return result


def _print_profile(profile: dict) -> None:
    print()
    print(
        render_table(
            (
                f"X7: client sampling ({profile['registered']} registered, "
                f"{profile['sampled']} sampled, {profile['rounds']} rounds)"
            ),
            ["metric", "value"],
            [
                ["wall s", f"{profile['wall_s']:.1f}"],
                ["rounds/s", f"{profile['rounds_per_s']:.3f}"],
                ["instantiated peers", f"{profile['instantiated']}"],
                ["submitted txs", f"{profile['submits']}"],
                ["peak RSS MB", f"{profile['peak_rss_mb']:.0f}"],
            ],
        )
    )


def test_sampled_subcohort_bounds_work(benchmark, smoke):
    """1000 registered / 25 sampled: per-round work tracks the subcohort.

    The work-bound assertions (training logs, instantiation, transaction
    budget) live inside :func:`run_sampling_profile`, so the timing row
    is also the proof that roster size stays off the per-round path.
    """
    params = sampling_params(smoke)
    profile = run_once(
        benchmark,
        lambda: run_sampling_profile(
            params["registered"],
            params["sampled"],
            params["rounds"],
            params["train"],
            params["test"],
        ),
    )
    _print_profile(profile)
    assert profile["rounds_per_s"] > 0


def test_full_participation_unchanged(benchmark, smoke):
    """``sampled_k = n`` is byte-identical to the unsampled driver."""
    params = sampling_params(smoke)
    result = run_once(
        benchmark,
        lambda: check_full_equivalence(
            params["identity_size"],
            params["rounds"],
            params["train"],
            params["test"],
        ),
    )
    assert result["identical"]
