"""X4 — cohort scaling: the speed/precision trade-off at 10-50 peers.

The ROADMAP's open question after the batched-gossip (PR 1) and
journaled-state (PR 2) substrate work: does the paper's trade-off survive
cohorts an order of magnitude beyond its three VMs?  This bench drives the
scenario sweep driver (:func:`repro.scenarios.sweep.cohort_sweep`) over
10/25/50-peer cohorts with heterogeneous device speeds, wait-for-all
against wait-for-k, and greedy combination selection above the exhaustive
limit, reporting mean per-peer wait (simulated seconds) against cohort-mean
final accuracy.

Shape criteria: under wait-for-all the mean wait grows from the smallest
to the largest cohort (the slowest of n devices is increasing in n;
intermediate sizes can jitter by one block interval, so only the endpoints
are asserted), wait-for-k waits less than wait-for-all at the same size,
and accuracy stays in a sane band (aggregation at scale does not collapse).

``--smoke`` shrinks to 4/6-peer cohorts and test-scale data so the tier-1
suite can run the same code path in seconds.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from _bench_util import run_once
from repro.fl.async_policy import WaitForK
from repro.metrics.tables import format_sweep_table
from repro.scenarios import ScenarioContext, cohort_scenario, cohort_sweep

_CACHE: dict = {}


def sweep_params(smoke: bool = False) -> dict:
    """Cohort sizes and the wait-for-k midpoint for one tier."""
    if smoke:
        return {"sizes": [4, 6], "k": 3, "quick": True}
    return {"sizes": [10, 25, 50], "k": 5, "quick": False}


def scaling_sweep(sizes: list[int], k: int, quick: bool, seed: int = 42) -> dict:
    """Run the sweep under wait-for-all and wait-for-k; share datasets."""
    key = (tuple(sizes), k, quick, seed)
    if key in _CACHE:
        return _CACHE[key]
    base = cohort_scenario(min(sizes), seed=seed)
    if quick:
        # Tier-1 scale: one round, tiny splits — the policies, greedy
        # selection, and chain substrate still run end to end.
        base = replace(
            base.quick(),
            rounds=1,
            cohort=replace(base.cohort, train_samples=80, test_samples=60),
            aggregator_test_samples=60,
        )
    context = ScenarioContext()
    result = {
        "wait_all": cohort_sweep(sizes, base=base, seed=seed, context=context),
        "wait_k": cohort_sweep(
            sizes, base=base, seed=seed, policy=WaitForK(k), context=context
        ),
        "dataset_hits": context.stats["dataset_hits"],
        "dataset_misses": context.stats["dataset_misses"],
    }
    _CACHE[key] = result
    return result


def _print_rows(label: str, rows: list[dict]) -> None:
    print()
    print(format_sweep_table(f"X4: cohort scaling ({label})", rows))


def test_cohort_scaling_wait_grows_with_size(benchmark, smoke):
    """Wait-for-all: the biggest cohort waits longer than the smallest.

    Only the endpoints are compared: the mean wait of an intermediate
    size can land one block interval early or late (inclusion timing
    quantizes readiness), which is noise, not signal.
    """
    params = sweep_params(smoke)
    result = run_once(
        benchmark, lambda: scaling_sweep(params["sizes"], params["k"], params["quick"])
    )
    rows = result["wait_all"]
    _print_rows("wait-for-all", rows)
    waits = [row["mean_wait_s"] for row in rows]
    assert all(wait > 0.0 for wait in waits)
    assert waits[-1] > waits[0], f"wait should grow with cohort size, got {waits}"
    assert all(0.0 < row["final_accuracy"] <= 1.0 for row in rows)


def test_cohort_scaling_async_is_faster(benchmark, smoke):
    """Wait-for-k waits less than wait-for-all at every cohort size."""
    params = sweep_params(smoke)
    result = run_once(
        benchmark, lambda: scaling_sweep(params["sizes"], params["k"], params["quick"])
    )
    _print_rows(f"wait-for-{params['k']}", result["wait_k"])
    for row_all, row_k in zip(result["wait_all"], result["wait_k"]):
        assert row_k["cohort"] == row_all["cohort"]
        assert row_k["mean_wait_s"] <= row_all["mean_wait_s"]
    # Precision: asynchronous aggregation costs little accuracy at scale
    # (the paper's claim, re-measured beyond three peers).
    acc_all = [row["final_accuracy"] for row in result["wait_all"]]
    acc_k = [row["final_accuracy"] for row in result["wait_k"]]
    assert max(abs(a - b) for a, b in zip(acc_all, acc_k)) < 0.15


def test_cohort_sweep_shares_datasets(benchmark, smoke):
    """The sweep driver pays for each distinct dataset split exactly once."""
    params = sweep_params(smoke)
    result = run_once(
        benchmark, lambda: scaling_sweep(params["sizes"], params["k"], params["quick"])
    )
    # The two policy sweeps cover the same (size, client) splits, so the
    # second sweep should be all cache hits: misses < total requests / 2.
    total = result["dataset_hits"] + result["dataset_misses"]
    assert result["dataset_hits"] >= total / 2, (
        f"expected shared datasets, got {result['dataset_hits']} hits / {total}"
    )


@pytest.mark.parametrize("size", [10])
def test_greedy_selection_engages_beyond_limit(benchmark, smoke, size):
    """Above the exhaustive limit the adopted combination comes from greedy
    forward selection: the per-round log holds one combination, not 2^n."""
    if smoke:
        size = 8
    spec = cohort_scenario(size, seed=1)
    spec = replace(
        spec.quick(),
        rounds=1,
        cohort=replace(spec.cohort, size=size, train_samples=80, test_samples=60),
        aggregator_test_samples=60,
    )
    from repro.scenarios import run_scenario

    result = run_once(benchmark, lambda: run_scenario(spec))
    assert len(result.client_accuracy) == size
    for log in result.round_logs:
        assert len(log.combination_accuracy) == 1, "expected greedy single-entry log"
        assert log.updates_visible == size
