"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` falls back to the legacy ``setup.py develop`` path
when no ``[build-system]`` table is present, which works offline.
Metadata lives in ``pyproject.toml``; setuptools >= 61 reads it from there.
"""

from setuptools import setup

setup()
