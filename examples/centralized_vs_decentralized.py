"""Centralized (Vanilla) vs decentralized (blockchain) federated learning.

Reproduces the paper's cross-setting comparison at reduced scale: the same
dataset, model, and hyperparameters run through (1) Vanilla FL with a
central aggregator in both "consider" and "not consider" modes, and (2) the
fully coupled blockchain deployment — then prints the accuracy trajectories
side by side.  The expected outcome is the paper's: "a notable similarity
in inference accuracy between centralized and decentralized FL settings."

Run:  python examples/centralized_vs_decentralized.py
"""

from __future__ import annotations

from repro.core.config import ExperimentConfig
from repro.core.experiment import run_decentralized_experiment, run_vanilla_experiment
from repro.data.synthetic import SyntheticSpec
from repro.metrics.figures import FigureSeries, render_ascii_chart
from repro.metrics.tables import render_table


def main() -> None:
    config = ExperimentConfig(
        model_kind="simple_nn",
        rounds=4,
        local_epochs=3,
        train_samples_per_client=400,
        test_samples_per_client=250,
        aggregator_test_samples=250,
        learning_rate=0.01,
        seed=31,
        data_spec=SyntheticSpec(seed=31),
    )

    print("1/3 centralized, not-consider (plain FedAvg) ...")
    vanilla_plain = run_vanilla_experiment(config, consider=False)
    print("2/3 centralized, consider (best combination) ...")
    vanilla_consider = run_vanilla_experiment(config, consider=True)
    print("3/3 decentralized over the simulated Ethereum network ...")
    decentralized = run_decentralized_experiment(config)

    # Per-round series for client A under each setting.
    series = [
        FigureSeries("central/not-consider", vanilla_plain.client_accuracy["A"]),
        FigureSeries("central/consider", vanilla_consider.client_accuracy["A"]),
        FigureSeries(
            "blockchain/chosen",
            [log.chosen_accuracy for log in decentralized.round_logs if log.peer_id == "A"],
        ),
    ]
    print()
    print(render_ascii_chart(series, title="Client A accuracy by setting"))

    rows = []
    for client in config.client_ids:
        chosen = [
            log.chosen_accuracy
            for log in decentralized.round_logs
            if log.peer_id == client
        ]
        rows.append(
            [
                client,
                f"{vanilla_plain.final_accuracy(client):.4f}",
                f"{vanilla_consider.final_accuracy(client):.4f}",
                f"{chosen[-1]:.4f}",
            ]
        )
    print()
    print(
        render_table(
            "Final-round accuracy per client",
            ["client", "central (not consider)", "central (consider)", "blockchain"],
            rows,
        )
    )
    print()
    print(
        "The three columns land close together — decentralizing the\n"
        "aggregator onto the chain costs essentially no accuracy, which is\n"
        "the paper's justification for removing the single point of failure."
    )


if __name__ == "__main__":
    main()
