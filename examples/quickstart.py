"""Quickstart: three peers, one blockchain, one federated round.

Builds the smallest end-to-end deployment the library supports — the
paper's architecture in miniature — and walks through every step:

1. synthesize a CIFAR-10-like dataset and split it across three clients;
2. spin up a simulated private Ethereum network (one node per peer) and
   deploy the FL contract suite;
3. run two communication rounds of fully coupled blockchain-based FL;
4. print each peer's combination table and the chain telemetry.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.config import ExperimentConfig
from repro.core.experiment import run_decentralized_experiment
from repro.data.synthetic import SyntheticSpec
from repro.metrics.tables import format_combination_table


def main() -> None:
    # A small configuration so the whole script runs in a few seconds.
    config = ExperimentConfig(
        model_kind="simple_nn",
        rounds=2,
        local_epochs=2,
        train_samples_per_client=300,
        test_samples_per_client=200,
        aggregator_test_samples=200,
        learning_rate=0.01,
        seed=7,
        data_spec=SyntheticSpec(seed=7),
    )

    print("Running 2 rounds of blockchain-based federated learning")
    print(f"  model: {config.model_kind}, clients: {', '.join(config.client_ids)}")
    result = run_decentralized_experiment(config)

    for peer_id in config.client_ids:
        print()
        print(
            format_combination_table(
                "Simple NN", peer_id, result.combination_accuracy[peer_id]
            )
        )

    print()
    print("Chain telemetry:")
    for key, value in result.chain_stats.items():
        print(f"  {key}: {value}")
    print()
    print("Mean aggregation wait per peer (simulated seconds):")
    for peer_id, wait in result.wait_times.items():
        print(f"  {peer_id}: {wait:.1f}s")


if __name__ == "__main__":
    main()
