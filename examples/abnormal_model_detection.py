"""Abnormal-model detection, evidence, and on-chain banishment.

Demonstrates the paper's non-repudiation case (Section III, Case 3) end to
end:

1. run one round of blockchain-based FL where client C trains on
   label-flipped (poisoned) data;
2. client A notices C's model fails the fitness evaluation on A's test set
   and excludes it from aggregation (the "consider" behaviour);
3. A assembles on-chain evidence — the signed submission transaction, its
   Merkle inclusion proof, and the committed weights hash — proving C
   authored exactly those weights;
4. every peer independently verifies the evidence, and the registry admin
   bans C, whose future submissions then revert.

Run:  python examples/abnormal_model_detection.py
"""

from __future__ import annotations

import numpy as np

from repro.core.decentralized import DecentralizedConfig, DecentralizedFL
from repro.core.nonrepudiation import collect_evidence, verify_evidence
from repro.core.peer import PeerConfig
from repro.data.synthetic import SyntheticImageDataset, SyntheticSpec
from repro.fl.poisoning import LabelFlipAttacker
from repro.fl.trainer import TrainConfig
from repro.nn.models import build_simple_nn
from repro.utils.rng import RngFactory


def main() -> None:
    spec = SyntheticSpec(seed=23)
    factory = SyntheticImageDataset(spec)
    rngs = RngFactory(23)
    peers = ("A", "B", "C")

    train_sets = {
        p: factory.sample(300, rngs.get("train", p), name=f"train/{p}") for p in peers
    }
    test_sets = {
        p: factory.sample(200, rngs.get("test", p), name=f"test/{p}") for p in peers
    }
    # Client C's training data is poisoned: every label flipped to class 0.
    attacker = LabelFlipAttacker(flip_fraction=1.0, target_class=0)
    train_sets["C"] = attacker.poison_dataset(train_sets["C"], rngs.get("attack"))
    print("Client C's training labels have been flipped to class 0 (poisoning).")

    driver = DecentralizedFL(
        [
            PeerConfig(
                peer_id=p,
                train_config=TrainConfig(epochs=3, learning_rate=0.01),
                training_time=20.0,
            )
            for p in peers
        ],
        train_sets,
        test_sets,
        model_builder=lambda rng: build_simple_nn(np.random.default_rng(42)),
        config=DecentralizedConfig(rounds=1),
        rng_factory=rngs.spawn("chain"),
    )
    logs = driver.run()

    print()
    print("Round 1 aggregation choices (best combination per peer):")
    for log in logs:
        marker = " <- excluded C" if "C" not in log.chosen_combination else ""
        print(
            f"  peer {log.peer_id}: chose {{{','.join(log.chosen_combination)}}} "
            f"at accuracy {log.chosen_accuracy:.4f}{marker}"
        )

    # Non-repudiation: A proves C committed exactly those poisoned weights.
    # Evidence assembly needs raw blocks and Merkle proofs — chain forensics
    # below the gateway API — so it reaches into the in-process backend's
    # node deliberately: the pragma is the sanctioned escape hatch.
    accuser = driver.peers["A"]
    suspect = driver.peers["C"]
    evidence = collect_evidence(
        accuser.gateway.node,  # repro-lint: disable=seam
        suspect.address,
        1,
        accuser.model_store_address,
    )
    weights = driver.offchain.get_weights(evidence.committed_hash)
    print()
    print("Evidence bundle assembled by A against C:")
    print(f"  committed hash : {evidence.committed_hash[:18]}...")
    print(f"  block number   : {evidence.block_number}")
    print(f"  merkle proof   : {len(evidence.proof)} node(s)")
    for peer_id, peer in driver.peers.items():
        verdict = verify_evidence(
            peer.gateway.node, evidence, weights=weights  # repro-lint: disable=seam
        )
        print(f"  verified by {peer_id}: {verdict}")

    # The registry admin (deployer A) bans C on-chain.
    registry = driver._registry_address()
    ban_tx = accuser.make_transaction(
        to=registry, method="ban", args={"address": suspect.address, "reason": "poisoned model"}
    )
    accuser.gateway.submit(ban_tx)
    driver.network.start_mining()
    driver._wait_until(
        lambda: accuser.gateway.call(registry, "is_banned", address=suspect.address),
        "ban transaction",
    )
    driver.network.stop_mining()
    print()
    print(
        "C banned on-chain:",
        accuser.gateway.call(registry, "is_banned", address=suspect.address),
    )
    print(
        "C still a member? ",
        accuser.gateway.call(registry, "is_member", address=suspect.address),
    )


if __name__ == "__main__":
    main()
