"""A 10-peer adversarial sweep through the scenario API.

Sweeps the attacker fraction over a 10-peer cohort (label-flip attackers,
heterogeneous devices, greedy combination selection) and prints one
speed/precision row per point — datasets are shared across the grid.

Run: ``PYTHONPATH=src python examples/cohort_sweep.py``
"""
from repro.metrics.tables import format_sweep_table
from repro.scenarios import AdversarySpec, cohort_scenario, grid, run_grid

base = cohort_scenario(10, seed=7).quick()
points = grid(base, {"adversary": [
    AdversarySpec(),
    AdversarySpec(kind="label_flip", fraction=0.2),
    AdversarySpec(kind="label_flip", fraction=0.4),
]})
rows = [{"attackers": ",".join(p.result.adversaries) or "-", **p.result.summary()} for p in run_grid(points)]
print(format_sweep_table("10-peer cohort vs label-flip fraction", rows))
