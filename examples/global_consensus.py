"""Operating mode 2: a common global model finalized by on-chain votes.

Section III-B of the paper describes two options for each peer: customize
an arbitrary combination (personalized mode — Tables II-IV), or "agree on a
common block of local updates ... like a global model; however, instead of
a fixed single aggregator, this mechanism allows any peer to become the
aggregator".  This example runs that second mode with the reputation
extension enabled:

1. every peer aggregates all visible models and votes the aggregate's hash
   through the AggregationCoordinator contract;
2. the first hash reaching the vote threshold is finalized — every peer
   adopts the identical global model (verified bit-for-bit below);
3. after each round peers rate each other on the ReputationLedger based on
   local fitness evaluations.

Run:  python examples/global_consensus.py
"""

from __future__ import annotations

import numpy as np

from repro.core.decentralized import DecentralizedConfig, DecentralizedFL
from repro.core.peer import PeerConfig
from repro.data.synthetic import SyntheticImageDataset, SyntheticSpec
from repro.fl.trainer import TrainConfig
from repro.metrics.tables import render_table
from repro.nn.models import build_simple_nn
from repro.nn.serialize import weights_hash
from repro.utils.rng import RngFactory


def main() -> None:
    spec = SyntheticSpec(seed=17)
    factory = SyntheticImageDataset(spec)
    rngs = RngFactory(17)
    peers = ("A", "B", "C")

    driver = DecentralizedFL(
        [
            PeerConfig(
                peer_id=p,
                train_config=TrainConfig(epochs=2, learning_rate=0.01),
                training_time=25.0,
            )
            for p in peers
        ],
        {p: factory.sample(300, rngs.get("train", p)) for p in peers},
        {p: factory.sample(200, rngs.get("test", p)) for p in peers},
        model_builder=lambda rng: build_simple_nn(np.random.default_rng(42)),
        config=DecentralizedConfig(rounds=3, mode="global_vote", enable_reputation=True),
        rng_factory=rngs.spawn("chain"),
    )
    print("Running 3 rounds in global-vote mode with reputation enabled ...")
    logs = driver.run()

    rows = []
    for log in logs:
        rows.append(
            [
                str(log.round_id),
                log.peer_id,
                ",".join(log.chosen_combination),
                f"{log.chosen_accuracy:.4f}",
            ]
        )
    print()
    print(render_table("Adopted global model per peer per round", ["round", "peer", "members", "local acc"], rows))

    # Every peer holds the byte-identical global model.
    hashes = {
        peer_id: weights_hash(peer.client.model.get_weights())[:18] + "..."
        for peer_id, peer in driver.peers.items()
    }
    print()
    print("Model hash held by each peer after round 3 (identical = consensus):")
    for peer_id, digest in hashes.items():
        print(f"  {peer_id}: {digest}")

    # On-chain finalization record for each round.
    viewer = driver.peers["A"]
    print()
    print("Finalized aggregate hash per round (from A's chain view):")
    for round_id in range(1, 4):
        final = viewer.gateway.call(
            viewer.coordinator_address, "finalized_hash", round_id=round_id
        )
        print(f"  round {round_id}: {final[:18]}...")

    print()
    print("Reputation scores after three honest rounds:")
    for peer_id in peers:
        print(f"  {peer_id}: {driver.reputation_of(peer_id)}")


if __name__ == "__main__":
    main()
