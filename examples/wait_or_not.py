"""The paper's headline question, runnable: wait, or not to wait?

Sweeps the asynchronous-aggregation policy (wait-for-1, wait-for-2,
wait-for-all) over the decentralized deployment with peers whose training
speeds differ, and reports the speed/precision trade-off: how long each
policy waits versus what accuracy it reaches.

Run:  python examples/wait_or_not.py
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ExperimentConfig
from repro.core.decentralized import DecentralizedConfig
from repro.core.experiment import run_decentralized_experiment
from repro.data.synthetic import SyntheticSpec
from repro.fl.async_policy import WaitForAll, WaitForK
from repro.metrics.tables import render_table


def main() -> None:
    config = ExperimentConfig(
        model_kind="simple_nn",
        rounds=3,
        local_epochs=2,
        train_samples_per_client=300,
        test_samples_per_client=200,
        aggregator_test_samples=200,
        learning_rate=0.01,
        seed=11,
        data_spec=SyntheticSpec(seed=11),
    )

    rows = []
    for policy in (WaitForK(1), WaitForK(2), WaitForAll()):
        result = run_decentralized_experiment(
            config, chain_config=DecentralizedConfig(policy=policy)
        )
        mean_wait = float(np.mean(list(result.wait_times.values())))
        final_acc = float(
            np.mean([log.chosen_accuracy for log in result.round_logs[-3:]])
        )
        visible = float(np.mean([log.updates_visible for log in result.round_logs]))
        rows.append(
            [policy.describe(), f"{mean_wait:.1f}", f"{final_acc:.4f}", f"{visible:.2f}"]
        )
        print(f"finished {policy.describe()}")

    print()
    print(
        render_table(
            "Wait or not to wait: speed vs precision",
            ["policy", "mean wait (sim s)", "final accuracy", "models visible"],
            rows,
        )
    )
    print()
    print(
        "Reading: wait-for-all maximizes the models available to each\n"
        "aggregation; wait-for-1 proceeds immediately. For simple models the\n"
        "accuracy column barely moves — asynchronous aggregation is, as the\n"
        "paper concludes, 'a viable and advantageous alternative'."
    )


if __name__ == "__main__":
    main()
