"""A cohort running as separate OS processes — byte-identical to in-process.

Runs the same 4-peer decentralized scenario twice: once in one
interpreter (the reference driver) and once with the peers sharded
across two worker processes behind the wire-served gateway
(``runtime="multiprocess"``).  The runtime is a pure process-topology
knob, so the final model digests, accuracy tables, and chain shape match
exactly — the example prints both along with the wire traffic the
multiprocess run paid.

Run: ``PYTHONPATH=src python examples/multiprocess_cohort.py``
"""
from dataclasses import replace

from repro.scenarios import ScenarioContext, cohort_scenario, run_scenario

spec = cohort_scenario(4, seed=7).quick()
context = ScenarioContext()  # both runs share datasets and backbones

inproc = run_scenario(spec, context=context)
multi = run_scenario(
    replace(spec, runtime="multiprocess", runtime_workers=2), context=context
)

assert multi.model_digests == inproc.model_digests
assert multi.client_accuracy == inproc.client_accuracy
assert multi.chain_stats["heights"] == inproc.chain_stats["heights"]

wire = multi.chain_stats["gateway"]["wire"]
print(f"cohort of {spec.cohort.size}, {spec.rounds} rounds, seed {spec.seed}")
print(f"in-process   final acc: {inproc.mean_final_accuracy():.4f}")
print(f"multiprocess final acc: {multi.mean_final_accuracy():.4f}  "
      f"({wire['workers']} workers)")
print(f"model digests identical for all {len(multi.model_digests)} peers")
print(f"wire: {wire['rpc_round_trips']} RPC round trips, "
      f"{(wire['bytes_sent'] + wire['bytes_received']) / 1e6:.1f} MB")
